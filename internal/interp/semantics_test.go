package interp

import (
	"math"
	"testing"
	"testing/quick"

	"helixrc/internal/ir"
)

// evalBin runs a single binary operation through the interpreter.
func evalBin(t *testing.T, op ir.Op, a, b int64) int64 {
	t.Helper()
	p := ir.NewProgram("sem")
	f := p.NewFunction("main", 2)
	bb := ir.NewBuilder(p, f)
	r := bb.Bin(op, ir.R(f.Params[0]), ir.R(f.Params[1]))
	bb.Ret(ir.R(r))
	res, err := Run(p, f, 0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	return res.RetValue
}

// TestArithmeticSemantics property-checks every arithmetic opcode against
// the corresponding Go semantics.
func TestArithmeticSemantics(t *testing.T) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	cases := []struct {
		op   ir.Op
		want func(a, b int64) int64
	}{
		{ir.OpAdd, func(a, b int64) int64 { return a + b }},
		{ir.OpSub, func(a, b int64) int64 { return a - b }},
		{ir.OpMul, func(a, b int64) int64 { return a * b }},
		{ir.OpDiv, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a / b
		}},
		{ir.OpRem, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a % b
		}},
		{ir.OpAnd, func(a, b int64) int64 { return a & b }},
		{ir.OpOr, func(a, b int64) int64 { return a | b }},
		{ir.OpXor, func(a, b int64) int64 { return a ^ b }},
		{ir.OpShl, func(a, b int64) int64 { return a << (uint64(b) & 63) }},
		{ir.OpShr, func(a, b int64) int64 { return a >> (uint64(b) & 63) }},
		{ir.OpCmpEQ, func(a, b int64) int64 { return b2i(a == b) }},
		{ir.OpCmpNE, func(a, b int64) int64 { return b2i(a != b) }},
		{ir.OpCmpLT, func(a, b int64) int64 { return b2i(a < b) }},
		{ir.OpCmpLE, func(a, b int64) int64 { return b2i(a <= b) }},
		{ir.OpCmpGT, func(a, b int64) int64 { return b2i(a > b) }},
		{ir.OpCmpGE, func(a, b int64) int64 { return b2i(a >= b) }},
		{ir.OpMin, func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		}},
		{ir.OpMax, func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		}},
		{ir.OpFAdd, func(a, b int64) int64 { return a + b }},
		{ir.OpFMul, func(a, b int64) int64 { return a * b }},
	}
	for _, tc := range cases {
		tc := tc
		// Build the program once per op; re-run with random operands.
		p := ir.NewProgram("sem")
		f := p.NewFunction("main", 2)
		bb := ir.NewBuilder(p, f)
		r := bb.Bin(tc.op, ir.R(f.Params[0]), ir.R(f.Params[1]))
		bb.Ret(ir.R(r))
		check := func(a, b int64) bool {
			res, err := Run(p, f, 0, a, b)
			if err != nil {
				return false
			}
			return res.RetValue == tc.want(a, b)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", tc.op, err)
		}
	}
}

// TestInterpreterVsRecursiveCall: function calls nest correctly (a
// recursive fibonacci through explicit calls).
func TestRecursiveCall(t *testing.T) {
	p := ir.NewProgram("fib")
	fib := p.NewFunction("fib", 1)
	b := ir.NewBuilder(p, fib)
	n := fib.Params[0]
	base := b.NewBlock("base")
	rec := b.NewBlock("rec")
	c := b.Bin(ir.OpCmpLT, ir.R(n), ir.C(2))
	b.CondBr(ir.R(c), base, rec)
	b.SetBlock(base)
	b.Ret(ir.R(n))
	b.SetBlock(rec)
	n1 := b.Sub(ir.R(n), ir.C(1))
	n2 := b.Sub(ir.R(n), ir.C(2))
	f1 := b.Call(fib, ir.R(n1))
	f2 := b.Call(fib, ir.R(n2))
	s := b.Add(ir.R(f1), ir.R(f2))
	b.Ret(ir.R(s))
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, fib, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetValue != 610 {
		t.Errorf("fib(15) = %d, want 610", res.RetValue)
	}
}

// TestShiftMasking: shift amounts beyond 63 are masked, not UB.
func TestShiftMasking(t *testing.T) {
	if got := evalBin(t, ir.OpShl, 1, 65); got != 2 {
		t.Errorf("1 << 65 (masked) = %d, want 2", got)
	}
	if got := evalBin(t, ir.OpShr, -8, 1); got != -4 {
		t.Errorf("-8 >> 1 = %d, want -4 (arithmetic shift)", got)
	}
	// Negative shift amounts reinterpret as huge unsigned counts and
	// mask down, matching the hardware barrel shifter: -1 & 63 = 63.
	if got := evalBin(t, ir.OpShl, 1, -1); got != math.MinInt64 {
		t.Errorf("1 << -1 (masked to 63) = %d, want %d", got, int64(math.MinInt64))
	}
	if got := evalBin(t, ir.OpShr, -1, -1); got != -1 {
		t.Errorf("-1 >> -1 (masked to 63) = %d, want -1", got)
	}
}

// TestDivRemEdges pins the division edge cases the quick-check is
// unlikely to hit: the overflow pair (MinInt64, -1), division by zero
// (defined as 0, not a trap), and truncation toward zero for every sign
// combination.
func TestDivRemEdges(t *testing.T) {
	const mn = math.MinInt64
	cases := []struct {
		op         ir.Op
		a, b, want int64
	}{
		// Two's-complement overflow wraps (Go semantics, no trap).
		{ir.OpDiv, mn, -1, mn},
		{ir.OpRem, mn, -1, 0},
		// Division by zero yields zero by definition.
		{ir.OpDiv, 42, 0, 0},
		{ir.OpRem, 42, 0, 0},
		{ir.OpDiv, mn, 0, 0},
		{ir.OpDiv, 0, 0, 0},
		// Truncation toward zero; remainder takes the dividend's sign.
		{ir.OpDiv, -7, 2, -3},
		{ir.OpRem, -7, 2, -1},
		{ir.OpDiv, 7, -2, -3},
		{ir.OpRem, 7, -2, 1},
		{ir.OpDiv, -7, -2, 3},
		{ir.OpRem, -7, -2, -1},
		{ir.OpDiv, mn, 2, mn / 2},
		{ir.OpRem, mn + 1, -1, 0},
	}
	for _, tc := range cases {
		if got := evalBin(t, tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("%s(%d, %d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

// TestOffsetAddressing: the instruction-encoded Off field and an
// explicit address add are the same effective address, including
// negative offsets, and stores through one form are visible to loads
// through the other.
func TestOffsetAddressing(t *testing.T) {
	p := ir.NewProgram("off")
	ty := p.NewType("arr")
	g := p.AddGlobal("g", 8, ty)
	g.Init = []int64{10, 11, 12, 13, 14, 15, 16, 17}
	f := p.NewFunction("main", 0)
	b := ir.NewBuilder(p, f)
	at := ir.MemAttrs{Type: ty, Path: "g[]"}
	base := b.Const(g.Addr)
	// g[3] via Off, g[3] via base+3 with Off 0, and g[5] via base+6 with
	// Off -1: all must read the initializer values.
	v3 := b.Load(ir.R(base), 3, at)
	p3 := b.Add(ir.R(base), ir.C(3))
	v3b := b.Load(ir.R(p3), 0, at)
	p6 := b.Add(ir.R(base), ir.C(6))
	v5 := b.Load(ir.R(p6), -1, at)
	// Store g[7] through an offset and read it back through a plain add.
	b.Store(ir.R(base), 7, ir.C(-99), at)
	p7 := b.Add(ir.R(base), ir.C(7))
	v7 := b.Load(ir.R(p7), 0, at)
	// checksum = v3*1e9 + v3b*1e6 + v5*1e3 + v7
	s := b.Mul(ir.R(v3), ir.C(1_000_000_000))
	t1 := b.Mul(ir.R(v3b), ir.C(1_000_000))
	s = b.Add(ir.R(s), ir.R(t1))
	t2 := b.Mul(ir.R(v5), ir.C(1_000))
	s = b.Add(ir.R(s), ir.R(t2))
	s = b.Add(ir.R(s), ir.R(v7))
	b.Ret(ir.R(s))
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(13*1_000_000_000 + 13*1_000_000 + 15*1_000 - 99)
	if res.RetValue != want {
		t.Errorf("checksum = %d, want %d", res.RetValue, want)
	}
}

// TestUninitializedMemoryAndRegs: unwritten memory words and unset
// registers read as zero.
func TestUninitializedMemoryAndRegs(t *testing.T) {
	p := ir.NewProgram("zero")
	ty := p.NewType("arr")
	g := p.AddGlobal("g", 4, ty) // no Init
	f := p.NewFunction("main", 0)
	b := ir.NewBuilder(p, f)
	at := ir.MemAttrs{Type: ty, Path: "g[]"}
	base := b.Const(g.Addr)
	v := b.Load(ir.R(base), 2, at)
	fresh := f.NewReg() // never written
	s := b.Add(ir.R(v), ir.R(fresh))
	b.Ret(ir.R(s))
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetValue != 0 {
		t.Errorf("uninitialized load+reg = %d, want 0", res.RetValue)
	}
}

// TestCallReturnEffects pins the register effects of the three call
// shapes: a void call must not clobber any caller register, an extern
// with a Result writes exactly the destination, and a nested internal
// call returns into the right frame.
func TestCallReturnEffects(t *testing.T) {
	p := ir.NewProgram("calls")
	ty := p.NewType("cell")
	g := p.AddGlobal("cell", 1, ty)
	at := ir.MemAttrs{Type: ty, Path: "cell"}

	// void(x): stores x to the cell, returns nothing.
	void := p.NewFunction("void", 1)
	vb := ir.NewBuilder(p, void)
	vbase := vb.Const(g.Addr)
	vb.Store(ir.R(vbase), 0, ir.R(void.Params[0]), at)
	vb.RetVoid()

	// twice(x): nested internal call used from main.
	twice := p.NewFunction("twice", 1)
	tb := ir.NewBuilder(p, twice)
	tw := tb.Add(ir.R(twice.Params[0]), ir.R(twice.Params[0]))
	tb.Ret(ir.R(tw))

	ext := &ir.Extern{
		Name:     "neg",
		ArgsOnly: true,
		Latency:  1,
		Result:   func(args []int64) int64 { return -args[0] },
	}

	f := p.NewFunction("main", 1)
	b := ir.NewBuilder(p, f)
	sentinel := b.Const(777)
	// Void call with no destination register: the sentinel must survive.
	vc := ir.NewInstr(ir.OpCall)
	vc.Callee = void
	vc.Args = []ir.Value{ir.C(5)}
	f.Entry().Instrs = append(f.Entry().Instrs, vc)
	// Extern result lands in its own register.
	negv := b.CallExtern(ext, ir.R(f.Params[0]))
	// Nested internal calls: twice(twice(x)) = 4x.
	q := b.Call(twice, ir.R(f.Params[0]))
	q4 := b.Call(twice, ir.R(q))
	base := b.Const(g.Addr)
	cell := b.Load(ir.R(base), 0, at)
	// checksum = sentinel*1e6 + cell*1e4 + (q4 - negv)
	s := b.Mul(ir.R(sentinel), ir.C(1_000_000))
	t1 := b.Mul(ir.R(cell), ir.C(10_000))
	s = b.Add(ir.R(s), ir.R(t1))
	d := b.Sub(ir.R(q4), ir.R(negv))
	s = b.Add(ir.R(s), ir.R(d))
	b.Ret(ir.R(s))
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}

	// Void call really has no destination register.
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op == ir.OpCall && in.Callee == void && in.Dst != ir.NoReg {
				t.Fatalf("void call has Dst=%v, want NoReg", in.Dst)
			}
		}
	}

	res, err := Run(p, f, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	// sentinel=777, cell=5, twice(twice(9))=36, neg(9)=-9.
	want := int64(777*1_000_000 + 5*10_000 + 36 + 9)
	if res.RetValue != want {
		t.Errorf("checksum = %d, want %d", res.RetValue, want)
	}
}
