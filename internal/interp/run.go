package interp

import (
	"errors"

	"helixrc/internal/ir"
)

// ErrBudget is returned when a run exceeds its instruction budget.
var ErrBudget = errors.New("interp: instruction budget exceeded")

// Result summarizes a sequential whole-program run.
type Result struct {
	RetValue int64
	Steps    int64
	Mem      *Memory
}

// Run executes fn(args...) to completion against a fresh memory, bounded by
// budget instructions (0 means a generous default).
func Run(p *ir.Program, fn *ir.Function, budget int64, args ...int64) (Result, error) {
	mem := NewMemory(p)
	return RunWith(p, mem, fn, budget, args...)
}

// RunWith executes fn(args...) against an existing memory.
func RunWith(p *ir.Program, mem *Memory, fn *ir.Function, budget int64, args ...int64) (Result, error) {
	if budget <= 0 {
		budget = 1 << 32
	}
	c := NewContext(p, mem, fn, args...)
	for !c.Done() {
		if c.Steps >= budget {
			return Result{Steps: c.Steps, Mem: mem}, ErrBudget
		}
		info := c.Step()
		if info.Returned {
			return Result{RetValue: info.RetValue, Steps: c.Steps, Mem: mem}, nil
		}
	}
	return Result{Steps: c.Steps, Mem: mem}, nil
}
