package interp

import (
	"fmt"

	"helixrc/internal/ir"
)

// frame is one activation record.
type frame struct {
	fn    *ir.Function
	regs  []int64
	blk   *ir.Block
	idx   int
	retTo ir.Reg // register in the caller receiving the return value
}

// StepInfo describes the instruction a Context just executed, giving timing
// models everything they need without re-decoding.
type StepInfo struct {
	Instr *ir.Instr
	// Addr is the effective address for OpLoad/OpStore.
	Addr int64
	// Value is the loaded or stored value for memory ops, or the register
	// result for arithmetic (useful for tracing).
	Value int64
	// Branched reports whether control transferred to a new block.
	Branched bool
	// Returned reports whether the context finished its outermost frame.
	Returned bool
	// RetValue is meaningful when Returned is true and the function
	// returned a value.
	RetValue int64
}

// Context is one thread of functional execution. It never blocks: wait and
// signal instructions execute as no-ops functionally, and the driver (the
// timing simulator) decides when Step may be called.
type Context struct {
	Prog *ir.Program
	Mem  *Memory

	stack []frame
	// Steps counts instructions executed, for budget enforcement.
	Steps int64
}

// NewContext returns a context poised to execute fn(args...).
func NewContext(p *ir.Program, mem *Memory, fn *ir.Function, args ...int64) *Context {
	c := &Context{Prog: p, Mem: mem}
	c.push(fn, ir.NoReg, args)
	return c
}

// NewContextWithRegs returns a context whose outermost frame uses the
// caller-provided register file (len must be >= fn.NumRegs). The HELIX
// simulator uses this so each core keeps one persistent register file
// across all loop iterations it executes.
func NewContextWithRegs(p *ir.Program, mem *Memory, fn *ir.Function, regs []int64, args ...int64) *Context {
	c := &Context{Prog: p, Mem: mem}
	if len(args) != len(fn.Params) {
		panic(fmt.Sprintf("interp: call %s with %d args, want %d", fn.Name, len(args), len(fn.Params)))
	}
	f := frame{fn: fn, regs: regs, blk: fn.Entry(), retTo: ir.NoReg}
	for i, p := range fn.Params {
		f.regs[p] = args[i]
	}
	c.stack = append(c.stack, f)
	return c
}

// Restart re-poses an existing context to execute fn with the
// caller-provided register file, reusing the frame stack's storage. It
// leaves the context in exactly the state NewContextWithRegs would,
// except that Steps keeps accumulating; the simulator uses it to avoid
// allocating a fresh context per loop iteration.
func (c *Context) Restart(fn *ir.Function, regs []int64, args ...int64) {
	if len(args) != len(fn.Params) {
		panic(fmt.Sprintf("interp: call %s with %d args, want %d", fn.Name, len(args), len(fn.Params)))
	}
	c.stack = c.stack[:0]
	c.stack = append(c.stack, frame{fn: fn, regs: regs, blk: fn.Entry(), retTo: ir.NoReg})
	for i, p := range fn.Params {
		regs[p] = args[i]
	}
}

func (c *Context) push(fn *ir.Function, retTo ir.Reg, args []int64) {
	if len(args) != len(fn.Params) {
		panic(fmt.Sprintf("interp: call %s with %d args, want %d", fn.Name, len(args), len(fn.Params)))
	}
	f := frame{fn: fn, regs: make([]int64, fn.NumRegs), blk: fn.Entry(), retTo: retTo}
	for i, p := range fn.Params {
		f.regs[p] = args[i]
	}
	c.stack = append(c.stack, f)
}

// Done reports whether the context has finished executing.
func (c *Context) Done() bool { return len(c.stack) == 0 }

// Next peeks at the next instruction without executing it, or nil when the
// context is done.
func (c *Context) Next() *ir.Instr {
	if c.Done() {
		return nil
	}
	f := &c.stack[len(c.stack)-1]
	return &f.blk.Instrs[f.idx]
}

// Frame returns the current function and block (for diagnostics).
func (c *Context) Frame() (*ir.Function, *ir.Block, int) {
	if c.Done() {
		return nil, nil, 0
	}
	f := &c.stack[len(c.stack)-1]
	return f.fn, f.blk, f.idx
}

// Reg reads a register in the current frame.
func (c *Context) Reg(r ir.Reg) int64 {
	return c.stack[len(c.stack)-1].regs[r]
}

// SetReg writes a register in the current frame.
func (c *Context) SetReg(r ir.Reg, v int64) {
	c.stack[len(c.stack)-1].regs[r] = v
}

// Regs exposes the current frame's register file (shared slice).
func (c *Context) Regs() []int64 { return c.stack[len(c.stack)-1].regs }

// JumpTo repositions the current frame at the start of blk.
func (c *Context) JumpTo(blk *ir.Block) {
	f := &c.stack[len(c.stack)-1]
	f.blk = blk
	f.idx = 0
}

// eval resolves an operand against the current frame.
func (c *Context) eval(f *frame, v ir.Value) int64 {
	switch v.Kind {
	case ir.KindReg:
		return f.regs[v.Reg]
	case ir.KindConst:
		return v.Imm
	default:
		return 0
	}
}

// EffectiveAddr computes the address a memory instruction would access,
// without executing it. Timing models use this to consult caches before
// commit.
func (c *Context) EffectiveAddr(in *ir.Instr) int64 {
	f := &c.stack[len(c.stack)-1]
	return c.eval(f, in.A) + in.Off
}

// Step executes exactly one instruction and reports what happened.
func (c *Context) Step() StepInfo {
	if c.Done() {
		panic("interp: Step on finished context")
	}
	c.Steps++
	f := &c.stack[len(c.stack)-1]
	in := &f.blk.Instrs[f.idx]
	info := StepInfo{Instr: in}

	advance := true
	switch in.Op {
	case ir.OpNop, ir.OpWait, ir.OpSignal:
		// Functional no-ops; synchronization timing is the driver's job.
	case ir.OpConst:
		f.regs[in.Dst] = in.A.Imm
		info.Value = in.A.Imm
	case ir.OpMov:
		v := c.eval(f, in.A)
		f.regs[in.Dst] = v
		info.Value = v
	case ir.OpAdd, ir.OpFAdd:
		f.regs[in.Dst] = c.eval(f, in.A) + c.eval(f, in.B)
	case ir.OpSub, ir.OpFSub:
		f.regs[in.Dst] = c.eval(f, in.A) - c.eval(f, in.B)
	case ir.OpMul, ir.OpFMul:
		f.regs[in.Dst] = c.eval(f, in.A) * c.eval(f, in.B)
	case ir.OpDiv, ir.OpFDiv:
		b := c.eval(f, in.B)
		if b == 0 {
			f.regs[in.Dst] = 0
		} else {
			f.regs[in.Dst] = c.eval(f, in.A) / b
		}
	case ir.OpRem:
		b := c.eval(f, in.B)
		if b == 0 {
			f.regs[in.Dst] = 0
		} else {
			f.regs[in.Dst] = c.eval(f, in.A) % b
		}
	case ir.OpAnd:
		f.regs[in.Dst] = c.eval(f, in.A) & c.eval(f, in.B)
	case ir.OpOr:
		f.regs[in.Dst] = c.eval(f, in.A) | c.eval(f, in.B)
	case ir.OpXor:
		f.regs[in.Dst] = c.eval(f, in.A) ^ c.eval(f, in.B)
	case ir.OpShl:
		f.regs[in.Dst] = c.eval(f, in.A) << (uint64(c.eval(f, in.B)) & 63)
	case ir.OpShr:
		f.regs[in.Dst] = c.eval(f, in.A) >> (uint64(c.eval(f, in.B)) & 63)
	case ir.OpCmpEQ:
		f.regs[in.Dst] = b2i(c.eval(f, in.A) == c.eval(f, in.B))
	case ir.OpCmpNE:
		f.regs[in.Dst] = b2i(c.eval(f, in.A) != c.eval(f, in.B))
	case ir.OpCmpLT:
		f.regs[in.Dst] = b2i(c.eval(f, in.A) < c.eval(f, in.B))
	case ir.OpCmpLE:
		f.regs[in.Dst] = b2i(c.eval(f, in.A) <= c.eval(f, in.B))
	case ir.OpCmpGT:
		f.regs[in.Dst] = b2i(c.eval(f, in.A) > c.eval(f, in.B))
	case ir.OpCmpGE:
		f.regs[in.Dst] = b2i(c.eval(f, in.A) >= c.eval(f, in.B))
	case ir.OpMin:
		a, b := c.eval(f, in.A), c.eval(f, in.B)
		f.regs[in.Dst] = min(a, b)
	case ir.OpMax:
		a, b := c.eval(f, in.A), c.eval(f, in.B)
		f.regs[in.Dst] = max(a, b)
	case ir.OpLoad:
		addr := c.eval(f, in.A) + in.Off
		v := c.Mem.Load(addr)
		f.regs[in.Dst] = v
		info.Addr, info.Value = addr, v
	case ir.OpStore:
		addr := c.eval(f, in.A) + in.Off
		v := c.eval(f, in.B)
		c.Mem.Store(addr, v)
		info.Addr, info.Value = addr, v
	case ir.OpAlloc:
		f.regs[in.Dst] = c.Mem.Alloc(in.Imm)
	case ir.OpBr:
		f.blk, f.idx = in.Target, 0
		advance = false
		info.Branched = true
	case ir.OpCondBr:
		if c.eval(f, in.A) != 0 {
			f.blk = in.Target
		} else {
			f.blk = in.Els
		}
		f.idx = 0
		advance = false
		info.Branched = true
	case ir.OpCall:
		if in.Extern != nil {
			args := make([]int64, len(in.Args))
			for i, a := range in.Args {
				args[i] = c.eval(f, a)
			}
			var v int64
			if in.Extern.Result != nil {
				v = in.Extern.Result(args)
			}
			if in.Dst != ir.NoReg {
				f.regs[in.Dst] = v
			}
			info.Value = v
		} else {
			args := make([]int64, len(in.Args))
			for i, a := range in.Args {
				args[i] = c.eval(f, a)
			}
			f.idx++ // resume after the call
			c.push(in.Callee, in.Dst, args)
			advance = false
			info.Branched = true
		}
	case ir.OpRet:
		var v int64
		if in.HasA {
			v = c.eval(f, in.A)
		}
		retTo := f.retTo
		c.stack = c.stack[:len(c.stack)-1]
		if len(c.stack) == 0 {
			info.Returned = true
			info.RetValue = v
		} else if retTo != ir.NoReg {
			c.stack[len(c.stack)-1].regs[retTo] = v
		}
		advance = false
	default:
		panic(fmt.Sprintf("interp: unhandled op %s", in.Op))
	}
	if advance {
		f.idx++
	}
	return info
}

// Branches reports whether executing in would set StepInfo.Branched —
// a static property of the instruction (taken branches, internal calls).
// Timing models that pre-decode instructions use it to resolve branch
// costs without consulting the per-step info, and the simulator's trace
// recorder relies on it so replay needs no per-instruction branch log.
func Branches(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpBr, ir.OpCondBr:
		return true
	case ir.OpCall:
		return in.Extern == nil
	}
	return false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
