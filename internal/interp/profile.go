package interp

import (
	"sort"

	"helixrc/internal/cfg"
	"helixrc/internal/ir"
)

// DepPair identifies a loop-carried memory dependence between two static
// instructions (by UID). The pair is stored with From <= To so that the
// unordered pair has one canonical form.
type DepPair struct {
	From, To int32
}

func canonPair(a, b int32) DepPair {
	if a > b {
		a, b = b, a
	}
	return DepPair{From: a, To: b}
}

// LoopProfile aggregates the dynamic behaviour of one loop over a run.
type LoopProfile struct {
	Fn   *ir.Function
	Loop *cfg.Loop

	Invocations int64
	Iterations  int64
	// InstrTotal counts every instruction executed while the loop was
	// active, including callees and inner loops (this is the loop's
	// dynamic coverage numerator).
	InstrTotal int64
	// IterLens samples per-iteration instruction counts (capped).
	IterLens []int32
	// TripCounts samples iterations per invocation (capped).
	TripCounts []int32
	// Deps maps each observed actual loop-carried memory dependence to the
	// number of times it occurred.
	Deps map[DepPair]int64
	// SharedAddrs is the set of addresses with cross-iteration traffic.
	SharedAddrs map[int64]struct{}
	// HopDist[d] counts shared-value first-consumptions whose undirected
	// producer→consumer core distance is d on the profiling ring.
	HopDist []int64
	// ConsumerCounts[k] counts shared stores consumed by k distinct cores
	// (index 0 means consumed by no other core before being overwritten).
	ConsumerCounts map[int]int64

	// internal per-address tracking state
	addrState map[int64]*addrRecord
	// iteration-in-progress state
	curIterInstrs int64
	curInvocIters int64
	frameDepth    int
}

const maxSamples = 1 << 16

type accessRecord struct {
	lastIter int64
	isWrite  bool
}

type addrRecord struct {
	// byInstr tracks the last iteration each static instruction touched
	// this address, for the dependence oracle.
	byInstr map[int32]accessRecord
	// Current live write, for hop/consumer statistics.
	writeIter     int64
	haveWrite     bool
	firstConsumed bool
	consumers     map[int]struct{}
}

// Coverage returns this loop's fraction of the program's dynamic
// instructions.
func (lp *LoopProfile) Coverage(programInstrs int64) float64 {
	if programInstrs == 0 {
		return 0
	}
	return float64(lp.InstrTotal) / float64(programInstrs)
}

// AvgIterLen returns the mean instructions per iteration.
func (lp *LoopProfile) AvgIterLen() float64 {
	if lp.Iterations == 0 {
		return 0
	}
	// InstrTotal includes partial tails; the sample mean is accurate
	// enough and avoids double counting across nested loops.
	var sum int64
	for _, v := range lp.IterLens {
		sum += int64(v)
	}
	if len(lp.IterLens) == 0 {
		return 0
	}
	return float64(sum) / float64(len(lp.IterLens))
}

// AvgTripCount returns the mean iterations per invocation.
func (lp *LoopProfile) AvgTripCount() float64 {
	if len(lp.TripCounts) == 0 {
		return 0
	}
	var sum int64
	for _, v := range lp.TripCounts {
		sum += int64(v)
	}
	return float64(sum) / float64(len(lp.TripCounts))
}

// Profile is the result of a profiling run.
type Profile struct {
	// Loops maps loop headers to their profiles, across all functions.
	Loops map[*cfg.Loop]*LoopProfile
	// Conflicts records loops observed active at the same time (one nested
	// dynamically inside the other, possibly across calls). Selecting two
	// conflicting loops would double-count coverage and require nested
	// parallelism, so the selector picks at most one of each pair.
	Conflicts map[*cfg.Loop]map[*cfg.Loop]bool
	// BlockCount records how many times each basic block was entered —
	// the loop selector weighs sequential-segment spans by execution
	// frequency (an inner loop inside a segment multiplies its cost).
	BlockCount map[*ir.Block]int64
	// TotalInstrs is the dynamic instruction count of the whole run.
	TotalInstrs int64
	RetValue    int64
}

// Conflict reports whether two loops were ever active simultaneously.
func (p *Profile) Conflict(a, b *cfg.Loop) bool {
	return p.Conflicts[a][b]
}

// LoopsBy returns profiles sorted by descending coverage.
func (p *Profile) LoopsBy() []*LoopProfile {
	out := make([]*LoopProfile, 0, len(p.Loops))
	for _, lp := range p.Loops {
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InstrTotal != out[j].InstrTotal {
			return out[i].InstrTotal > out[j].InstrTotal
		}
		return out[i].Loop.ID < out[j].Loop.ID
	})
	return out
}

// Profiler drives an instrumented sequential execution.
type Profiler struct {
	Prog *ir.Program
	// Forests supplies loop structure per function; functions absent from
	// the map are executed without loop instrumentation.
	Forests map[*ir.Function]*cfg.Forest
	// RingSize is the core count used for hop-distance statistics
	// (16 in the paper's Figure 4).
	RingSize int
	// Budget bounds the instruction count (0 = default).
	Budget int64
}

type activeLoop struct {
	lp         *LoopProfile
	iter       int64
	frameDepth int
}

// Run executes fn(args...) and returns the collected profile.
func (pr *Profiler) Run(fn *ir.Function, args ...int64) (*Profile, error) {
	if pr.RingSize <= 0 {
		pr.RingSize = 16
	}
	budget := pr.Budget
	if budget <= 0 {
		budget = 1 << 32
	}
	mem := NewMemory(pr.Prog)
	c := NewContext(pr.Prog, mem, fn, args...)
	prof := &Profile{
		Loops:      map[*cfg.Loop]*LoopProfile{},
		Conflicts:  map[*cfg.Loop]map[*cfg.Loop]bool{},
		BlockCount: map[*ir.Block]int64{},
	}
	if _, blk, _ := c.Frame(); blk != nil {
		prof.BlockCount[blk]++
	}
	addConflict := func(a, b *cfg.Loop) {
		if prof.Conflicts[a] == nil {
			prof.Conflicts[a] = map[*cfg.Loop]bool{}
		}
		if prof.Conflicts[b] == nil {
			prof.Conflicts[b] = map[*cfg.Loop]bool{}
		}
		prof.Conflicts[a][b] = true
		prof.Conflicts[b][a] = true
	}

	var stack []activeLoop
	depth := 1 // frame depth of the outermost function

	getLP := func(f *ir.Function, l *cfg.Loop) *LoopProfile {
		lp := prof.Loops[l]
		if lp == nil {
			lp = &LoopProfile{
				Fn: f, Loop: l,
				Deps:           map[DepPair]int64{},
				SharedAddrs:    map[int64]struct{}{},
				HopDist:        make([]int64, pr.RingSize/2+1),
				ConsumerCounts: map[int]int64{},
				addrState:      map[int64]*addrRecord{},
			}
			prof.Loops[l] = lp
		}
		return lp
	}

	// endIteration closes the loop's current iteration sample.
	endIteration := func(al *activeLoop) {
		if len(al.lp.IterLens) < maxSamples {
			al.lp.IterLens = append(al.lp.IterLens, int32(al.lp.curIterInstrs))
		}
		al.lp.curIterInstrs = 0
	}
	popLoop := func() {
		al := &stack[len(stack)-1]
		endIteration(al)
		if len(al.lp.TripCounts) < maxSamples {
			al.lp.TripCounts = append(al.lp.TripCounts, int32(al.iter+1))
		}
		stack = stack[:len(stack)-1]
	}

	for !c.Done() {
		if c.Steps >= budget {
			return prof, ErrBudget
		}
		curFn, curBlk, _ := c.Frame()
		in := c.Next()

		info := c.Step()
		prof.TotalInstrs++
		if info.Branched {
			if _, nb, _ := c.Frame(); nb != nil {
				prof.BlockCount[nb]++
			}
		}
		for i := range stack {
			stack[i].lp.InstrTotal++
			stack[i].lp.curIterInstrs++
		}

		// Memory dependence oracle for all active loops.
		if in.Op.IsMem() {
			isWrite := in.Op == ir.OpStore
			for i := range stack {
				pr.recordAccess(stack[i].lp, stack[i].iter, in.UID, info.Addr, isWrite)
			}
		}

		// Loop transitions happen only on intra-frame branches.
		switch {
		case info.Returned:
			// done below via c.Done
		case in.Op == ir.OpCall && in.Callee != nil:
			depth++
		case in.Op == ir.OpRet:
			depth--
			// Pop loops belonging to frames that no longer exist.
			for len(stack) > 0 && stack[len(stack)-1].frameDepth > depth {
				popLoop()
			}
		case info.Branched:
			_, nb, _ := c.Frame()
			// Pop loops in this frame whose body we just left.
			for len(stack) > 0 && stack[len(stack)-1].frameDepth == depth &&
				!stack[len(stack)-1].lp.Loop.Contains(nb) {
				popLoop()
			}
			forest := pr.Forests[curFn]
			if forest != nil {
				if l := headerOf(forest, nb); l != nil {
					top := -1
					if len(stack) > 0 {
						top = len(stack) - 1
					}
					if top >= 0 && stack[top].lp.Loop == l && stack[top].frameDepth == depth {
						// Back edge: next iteration.
						if isLatch(l, curBlk) {
							endIteration(&stack[top])
							stack[top].iter++
							stack[top].lp.Iterations++
						}
					} else {
						lp := getLP(curFn, l)
						lp.Invocations++
						lp.Iterations++
						for i := range stack {
							addConflict(stack[i].lp.Loop, l)
						}
						stack = append(stack, activeLoop{lp: lp, frameDepth: depth})
					}
				}
			}
		}
		if info.Returned {
			prof.RetValue = info.RetValue
		}
	}
	for len(stack) > 0 {
		popLoop()
	}
	// Finalize consumer counts for live writes.
	for _, lp := range prof.Loops {
		for _, st := range lp.addrState {
			if st.haveWrite {
				lp.ConsumerCounts[len(st.consumers)]++
			}
		}
		lp.addrState = nil
	}
	return prof, nil
}

func headerOf(f *cfg.Forest, b *ir.Block) *cfg.Loop {
	l := f.InnermostLoop(b)
	if l != nil && l.Header == b {
		return l
	}
	// b may be the header of an outer loop that also contains it.
	for ; l != nil; l = l.Parent {
		if l.Header == b {
			return l
		}
	}
	return nil
}

func isLatch(l *cfg.Loop, b *ir.Block) bool {
	for _, la := range l.Latches {
		if la == b {
			return true
		}
	}
	return false
}

func (pr *Profiler) recordAccess(lp *LoopProfile, iter int64, uid int32, addr int64, isWrite bool) {
	st := lp.addrState[addr]
	if st == nil {
		st = &addrRecord{byInstr: map[int32]accessRecord{}}
		lp.addrState[addr] = st
	}
	// Dependence oracle: any earlier-iteration access by another static
	// instruction (or the same one) where at least one side writes.
	for otherUID, rec := range st.byInstr {
		if rec.lastIter < iter && (rec.isWrite || isWrite) {
			lp.Deps[canonPair(otherUID, uid)]++
			lp.SharedAddrs[addr] = struct{}{}
		}
	}
	// Same instruction across iterations (e.g. a recurrent store).
	if rec, ok := st.byInstr[uid]; ok && rec.lastIter < iter && (rec.isWrite || isWrite) {
		lp.SharedAddrs[addr] = struct{}{}
	}
	st.byInstr[uid] = accessRecord{lastIter: iter, isWrite: isWrite}

	// Hop-distance / consumer statistics.
	n := int64(pr.RingSize)
	if isWrite {
		if st.haveWrite {
			lp.ConsumerCounts[len(st.consumers)]++
		}
		st.haveWrite = true
		st.writeIter = iter
		st.firstConsumed = false
		st.consumers = map[int]struct{}{}
	} else if st.haveWrite && iter > st.writeIter {
		core := int(iter % n)
		st.consumers[core] = struct{}{}
		if !st.firstConsumed {
			st.firstConsumed = true
			d := (iter - st.writeIter) % n
			if d > n/2 {
				d = n - d
			}
			if d == 0 {
				d = n / 2 // a full lap maps to the farthest hop bucket
			}
			lp.HopDist[d]++
		}
	}
}
