package interp

import (
	"testing"
	"testing/quick"

	"helixrc/internal/cfg"
	"helixrc/internal/ir"
)

// buildSumLoop builds: for (i=0; i<n; i++) sum += a[i]; return sum, over a
// global array initialized 0..99.
func buildSumLoop(t testing.TB) (*ir.Program, *ir.Function) {
	p := ir.NewProgram("sum")
	ty := p.NewType("int[]")
	arr := p.AddGlobal("a", 100, ty)
	for i := int64(0); i < 100; i++ {
		arr.Init = append(arr.Init, i)
	}
	f := p.NewFunction("main", 1)
	b := ir.NewBuilder(p, f)
	n := f.Params[0]
	base := b.GlobalAddr(arr)
	i := b.Const(0)
	sum := b.Const(0)
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(head)
	b.SetBlock(head)
	c := b.Bin(ir.OpCmpLT, ir.R(i), ir.R(n))
	b.CondBr(ir.R(c), body, exit)
	b.SetBlock(body)
	addr := b.Add(ir.R(base), ir.R(i))
	v := b.Load(ir.R(addr), 0, ir.MemAttrs{Type: ty})
	b.BinTo(sum, ir.OpAdd, ir.R(sum), ir.R(v))
	b.BinTo(i, ir.OpAdd, ir.R(i), ir.C(1))
	b.Br(head)
	b.SetBlock(exit)
	b.Ret(ir.R(sum))
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	p.AssignUIDs()
	return p, f
}

func TestRunSumLoop(t *testing.T) {
	p, f := buildSumLoop(t)
	res, err := Run(p, f, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetValue != 99*100/2 {
		t.Errorf("sum = %d, want %d", res.RetValue, 99*100/2)
	}
	if res.Steps == 0 {
		t.Error("no steps recorded")
	}
}

func TestRunBudget(t *testing.T) {
	p, f := buildSumLoop(t)
	_, err := Run(p, f, 10, 100)
	if err != ErrBudget {
		t.Errorf("want ErrBudget, got %v", err)
	}
}

func TestCallsAndExterns(t *testing.T) {
	p := ir.NewProgram("call")
	callee := p.NewFunction("double", 1)
	cb := ir.NewBuilder(p, callee)
	r := cb.Add(ir.R(callee.Params[0]), ir.R(callee.Params[0]))
	cb.Ret(ir.R(r))

	abs := &ir.Extern{Name: "abs", Result: func(a []int64) int64 {
		if a[0] < 0 {
			return -a[0]
		}
		return a[0]
	}, Latency: 3}

	f := p.NewFunction("main", 0)
	b := ir.NewBuilder(p, f)
	x := b.Call(callee, ir.C(21))
	y := b.CallExtern(abs, ir.C(-5))
	z := b.Add(ir.R(x), ir.R(y))
	b.Ret(ir.R(z))
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := Run(p, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetValue != 47 {
		t.Errorf("got %d, want 47", res.RetValue)
	}
}

func TestAllocAndMemory(t *testing.T) {
	p := ir.NewProgram("alloc")
	ty := p.NewType("buf")
	f := p.NewFunction("main", 0)
	b := ir.NewBuilder(p, f)
	buf := b.Alloc(8, ty)
	b.Store(ir.R(buf), 3, ir.C(42), ir.MemAttrs{Type: ty})
	v := b.Load(ir.R(buf), 3, ir.MemAttrs{Type: ty})
	b.Ret(ir.R(v))
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := Run(p, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetValue != 42 {
		t.Errorf("got %d, want 42", res.RetValue)
	}
	if res.Mem.ArenaNext() < p.ArenaBase()+8 {
		t.Error("arena did not advance")
	}
}

func TestMemoryGrowAndSnapshot(t *testing.T) {
	m := &Memory{}
	m.Store(100000, 7)
	if m.Load(100000) != 7 {
		t.Error("store/load at large address failed")
	}
	if m.Load(999999) != 0 {
		t.Error("unwritten memory should read 0")
	}
	snap := m.Snapshot(99999, 3)
	if snap[0] != 0 || snap[1] != 7 || snap[2] != 0 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestMemoryNegativePanics(t *testing.T) {
	m := &Memory{}
	defer func() {
		if recover() == nil {
			t.Error("negative address should panic")
		}
	}()
	m.Load(-1)
}

func TestMemoryStoreLoadProperty(t *testing.T) {
	m := &Memory{}
	f := func(addr uint16, v int64) bool {
		m.Store(int64(addr), v)
		return m.Load(int64(addr)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContextStepDetails(t *testing.T) {
	p, f := buildSumLoop(t)
	mem := NewMemory(p)
	c := NewContext(p, mem, f, 5)
	var loads, branches int
	for !c.Done() {
		in := c.Next()
		if in.Op == ir.OpLoad {
			// EffectiveAddr must match what Step reports.
			want := c.EffectiveAddr(in)
			info := c.Step()
			if info.Addr != want {
				t.Fatalf("EffectiveAddr=%d but Step saw %d", want, info.Addr)
			}
			loads++
			continue
		}
		info := c.Step()
		if info.Branched {
			branches++
		}
	}
	if loads != 5 {
		t.Errorf("loads = %d, want 5", loads)
	}
	if branches == 0 {
		t.Error("no branches observed")
	}
}

// buildRecurrence builds a loop with a true loop-carried memory dependence:
// for (i=1; i<n; i++) a[0] = a[0] + i   (store in iteration i, load in i+1).
func buildRecurrence(t testing.TB) (*ir.Program, *ir.Function, *cfg.Forest) {
	p := ir.NewProgram("rec")
	ty := p.NewType("cell")
	cell := p.AddGlobal("cell", 1, ty)
	f := p.NewFunction("main", 1)
	b := ir.NewBuilder(p, f)
	n := f.Params[0]
	base := b.GlobalAddr(cell)
	i := b.Const(0)
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(head)
	b.SetBlock(head)
	c := b.Bin(ir.OpCmpLT, ir.R(i), ir.R(n))
	b.CondBr(ir.R(c), body, exit)
	b.SetBlock(body)
	v := b.Load(ir.R(base), 0, ir.MemAttrs{Type: ty})
	nv := b.Add(ir.R(v), ir.R(i))
	b.Store(ir.R(base), 0, ir.R(nv), ir.MemAttrs{Type: ty})
	b.BinTo(i, ir.OpAdd, ir.R(i), ir.C(1))
	b.Br(head)
	b.SetBlock(exit)
	v2 := b.Load(ir.R(base), 0, ir.MemAttrs{Type: ty})
	b.Ret(ir.R(v2))
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	p.AssignUIDs()
	forest := cfg.FindLoops(cfg.New(f))
	return p, f, forest
}

func TestProfilerLoopStats(t *testing.T) {
	p, f, forest := buildRecurrence(t)
	pr := &Profiler{Prog: p, Forests: map[*ir.Function]*cfg.Forest{f: forest}, RingSize: 16}
	prof, err := pr.Run(f, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Loops) != 1 {
		t.Fatalf("profiled %d loops, want 1", len(prof.Loops))
	}
	var lp *LoopProfile
	for _, v := range prof.Loops {
		lp = v
	}
	if lp.Invocations != 1 {
		t.Errorf("invocations = %d", lp.Invocations)
	}
	if lp.Iterations != 41 { // 40 body iterations + final header evaluation
		t.Errorf("iterations = %d, want 41", lp.Iterations)
	}
	if len(lp.TripCounts) != 1 || lp.TripCounts[0] != 41 {
		t.Errorf("trip counts = %v", lp.TripCounts)
	}
	if len(lp.Deps) == 0 {
		t.Fatal("dependence oracle found no deps in a recurrence")
	}
	if len(lp.SharedAddrs) != 1 {
		t.Errorf("shared addrs = %v", lp.SharedAddrs)
	}
	// Every consumption is by the very next iteration: hop distance 1.
	if lp.HopDist[1] == 0 {
		t.Errorf("expected hop distance 1 samples, got %v", lp.HopDist)
	}
	if lp.AvgIterLen() <= 0 || lp.AvgTripCount() != 41 {
		t.Errorf("iterlen=%f trip=%f", lp.AvgIterLen(), lp.AvgTripCount())
	}
	if lp.Coverage(prof.TotalInstrs) <= 0.5 {
		t.Errorf("loop coverage suspiciously low: %f", lp.Coverage(prof.TotalInstrs))
	}
}

func TestProfilerNoDepsInDoall(t *testing.T) {
	p, f := buildSumLoop(t)
	forest := cfg.FindLoops(cfg.New(f))
	pr := &Profiler{Prog: p, Forests: map[*ir.Function]*cfg.Forest{f: forest}}
	prof, err := pr.Run(f, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range prof.Loops {
		if len(lp.Deps) != 0 {
			t.Errorf("DOALL loop reported deps: %v", lp.Deps)
		}
	}
	if prof.RetValue != 49*50/2 {
		t.Errorf("ret = %d", prof.RetValue)
	}
}

func TestProfilerBudget(t *testing.T) {
	p, f, forest := buildRecurrence(t)
	pr := &Profiler{Prog: p, Forests: map[*ir.Function]*cfg.Forest{f: forest}, Budget: 10}
	if _, err := pr.Run(f, 1000000); err != ErrBudget {
		t.Errorf("want ErrBudget, got %v", err)
	}
}
