package workloads

import "helixrc/internal/ir"

// Mesa builds the 177.mesa analogue: a 3-D rendering front end.
//
// Modelled loops:
//   - transform: per-vertex 3x3 matrix transform + translate with a
//     conditional clip path — a long-iteration DOALL whose variable path
//     lengths produce the iteration-imbalance overhead Figure 12 reports
//     (58.4% of mesa's overhead) while still reaching the suite's best
//     speedup (paper: 15.1x).
//   - lighting: per-vertex diffuse shading writing through a pointer that
//     was earlier repurposed — flow-insensitive pointer analysis (HCCv1's
//     VLLPA baseline) merges the two targets and serializes the loop, so
//     HCCv1 only covers the transform loop (Table 1: 64.3% vs 99%).
func Mesa() *Workload {
	p := ir.NewProgram("177.mesa")
	tyVert := p.NewType("vertex[]")
	tyOut := p.NewType("xformed[]")
	tyNorm := p.NewType("normal[]")
	tyCol := p.NewType("color[]")
	tyMat := p.NewType("matrix")

	const nVerts = 420
	verts := p.AddGlobal("verts", nVerts*3, tyVert)
	fill(verts, 1, 2048)
	norms := p.AddGlobal("norms", nVerts*3, tyNorm)
	fill(norms, 2, 255)
	out := p.AddGlobal("out", nVerts*3, tyOut)
	cols := p.AddGlobal("cols", nVerts, tyCol)
	mat := p.AddGlobal("mat", 12, tyMat)
	fill(mat, 3, 9)

	// transform(n): out[3v..] = M * verts[3v..] + T, with a clip path.
	transform := p.NewFunction("transform", 1)
	{
		b := ir.NewBuilder(p, transform)
		n := transform.Params[0]
		vb := b.GlobalAddr(verts)
		ob := b.GlobalAddr(out)
		mb := b.GlobalAddr(mat)
		// The matrix is loop-invariant: load it once.
		var m [12]ir.Reg
		for k := 0; k < 12; k++ {
			m[k] = b.Load(ir.R(mb), int64(k), ir.MemAttrs{Type: tyMat, Path: "mat"})
		}
		Loop(b, "xform", ir.R(n), func(v ir.Reg) {
			base := b.Mul(ir.R(v), ir.C(3))
			va := b.Add(ir.R(vb), ir.R(base))
			x := b.Load(ir.R(va), 0, ir.MemAttrs{Type: tyVert, Path: "v.x"})
			y := b.Load(ir.R(va), 1, ir.MemAttrs{Type: tyVert, Path: "v.y"})
			z := b.Load(ir.R(va), 2, ir.MemAttrs{Type: tyVert, Path: "v.z"})
			row := func(r int) ir.Reg {
				t0 := b.Bin(ir.OpFMul, ir.R(x), ir.R(m[r*3]))
				t1 := b.Bin(ir.OpFMul, ir.R(y), ir.R(m[r*3+1]))
				t2 := b.Bin(ir.OpFMul, ir.R(z), ir.R(m[r*3+2]))
				s0 := b.Bin(ir.OpFAdd, ir.R(t0), ir.R(t1))
				s1 := b.Bin(ir.OpFAdd, ir.R(s0), ir.R(t2))
				return b.Bin(ir.OpFAdd, ir.R(s1), ir.R(m[9+r]))
			}
			tx, ty, tz := row(0), row(1), row(2)
			// Perspective divide and viewport mapping (private FP work).
			wdiv := b.Bin(ir.OpFAdd, ir.R(tz), ir.C(4096))
			px := b.Bin(ir.OpFDiv, ir.R(tx), ir.R(wdiv))
			py := b.Bin(ir.OpFDiv, ir.R(ty), ir.R(wdiv))
			vx := FBusy(b, ir.R(px), 8)
			vy := FBusy(b, ir.R(py), 8)
			tx = b.Bin(ir.OpFAdd, ir.R(vx), ir.R(tx))
			ty = b.Bin(ir.OpFAdd, ir.R(vy), ir.R(ty))
			// Clip path: vertices outside the frustum pay extra work —
			// the source of mesa's iteration imbalance.
			clip := b.Bin(ir.OpCmpGT, ir.R(tx), ir.C(6000))
			If(b, ir.R(clip), func() {
				e := FBusy(b, ir.R(tx), 30)
				b.BinTo(tx, ir.OpFAdd, ir.R(tx), ir.R(e))
			}, nil)
			oa := b.Add(ir.R(ob), ir.R(base))
			b.Store(ir.R(oa), 0, ir.R(tx), ir.MemAttrs{Type: tyOut, Path: "o.x"})
			b.Store(ir.R(oa), 1, ir.R(ty), ir.MemAttrs{Type: tyOut, Path: "o.y"})
			b.Store(ir.R(oa), 2, ir.R(tz), ir.MemAttrs{Type: tyOut, Path: "o.z"})
		})
		b.RetVoid()
	}

	// lighting(n): cols[v] = shade(norms[3v..]). The output pointer is
	// reused from an earlier binding to norms, which defeats the
	// flow-insensitive baseline pointer analysis.
	lighting := p.NewFunction("lighting", 1)
	{
		b := ir.NewBuilder(p, lighting)
		n := lighting.Params[0]
		nb := b.GlobalAddr(norms)
		// q first points at the normal buffer (a warming read), then is
		// repurposed to the color buffer.
		q := b.Mov(ir.R(nb))
		warm := b.Load(ir.R(q), 0, ir.MemAttrs{Type: tyNorm, Path: "n.x"})
		b.MovTo(q, ir.C(cols.Addr))
		_ = warm
		Loop(b, "shade", ir.R(n), func(v ir.Reg) {
			base := b.Mul(ir.R(v), ir.C(3))
			na := b.Add(ir.R(nb), ir.R(base))
			nx := b.Load(ir.R(na), 0, ir.MemAttrs{Type: tyNorm, Path: "n.x"})
			ny := b.Load(ir.R(na), 1, ir.MemAttrs{Type: tyNorm, Path: "n.y"})
			nz := b.Load(ir.R(na), 2, ir.MemAttrs{Type: tyNorm, Path: "n.z"})
			d0 := b.Bin(ir.OpFMul, ir.R(nx), ir.C(3))
			d1 := b.Bin(ir.OpFMul, ir.R(ny), ir.C(5))
			d2 := b.Bin(ir.OpFMul, ir.R(nz), ir.C(2))
			s0 := b.Bin(ir.OpFAdd, ir.R(d0), ir.R(d1))
			s1 := b.Bin(ir.OpFAdd, ir.R(s0), ir.R(d2))
			c := b.Bin(ir.OpAnd, ir.R(s1), ir.C(255))
			ca := b.Add(ir.R(q), ir.R(v))
			b.Store(ir.R(ca), 0, ir.R(c), ir.MemAttrs{Type: tyCol, Path: "col"})
		})
		b.RetVoid()
	}

	// main(frames, nverts): render frames, then checksum.
	main := p.NewFunction("main", 2)
	{
		b := ir.NewBuilder(p, main)
		frames := main.Params[0]
		nverts := main.Params[1]
		Loop(b, "frames", ir.R(frames), func(fr ir.Reg) {
			b.Call(transform, ir.R(nverts))
			b.Call(lighting, ir.R(nverts))
		})
		sum := b.Const(0)
		ob := b.GlobalAddr(out)
		cb := b.GlobalAddr(cols)
		Loop(b, "sum", ir.C(64), func(i ir.Reg) {
			oa := b.Add(ir.R(ob), ir.R(i))
			v1 := b.Load(ir.R(oa), 0, ir.MemAttrs{Type: tyOut, Path: "o.x"})
			ca := b.Add(ir.R(cb), ir.R(i))
			v2 := b.Load(ir.R(ca), 0, ir.MemAttrs{Type: tyCol, Path: "col"})
			t := b.Add(ir.R(v1), ir.R(v2))
			b.BinTo(sum, ir.OpAdd, ir.R(sum), ir.R(t))
		})
		b.Ret(ir.R(sum))
	}

	return &Workload{
		Name: "177.mesa", Class: FP,
		Prog: p, Entry: main,
		TrainArgs:     []int64{2, nVerts},
		RefArgs:       []int64{8, nVerts},
		Phases:        8,
		PaperSpeedup:  15.1,
		PaperCoverage: [4]float64{0, 0.643, 0.99, 0.99},
	}
}
