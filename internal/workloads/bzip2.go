package workloads

import "helixrc/internal/ir"

// Bzip2 builds the 256.bzip2 analogue: block-sorting compression.
//
// Modelled loops:
//   - bucketSort: the per-bucket sorting pass — few long iterations (one
//     per radix bucket, trip count 16) whose inner scan length varies
//     with bucket occupancy. Low trip count dominates bzip2's overhead in
//     Figure 12; a per-bucket boundary update in shared memory provides
//     the communication/dependence component.
//   - mtf: the move-to-front encoding pass over the block, selectable by
//     HCCv1/v2 (Table 1: 72%).
//
// Paper speedup: 12.0x.
func Bzip2() *Workload {
	p := ir.NewProgram("256.bzip2")
	tyBlock := p.NewType("block[]")
	tyBkt := p.NewType("bounds[]")
	tyOut := p.NewType("mtfout[]")

	const (
		blockLen = 900
		nBuckets = 16
	)
	block := p.AddGlobal("block", blockLen, tyBlock)
	fill(block, 61, 251)
	bounds := p.AddGlobal("bounds", nBuckets, tyBkt)
	outBuf := p.AddGlobal("mtfout", blockLen, tyOut)

	// bucketSort(n): one iteration per radix bucket.
	bucketSort := p.NewFunction("bucketSort", 1)
	{
		b := ir.NewBuilder(p, bucketSort)
		n := bucketSort.Params[0]
		bb := b.GlobalAddr(block)
		kb := b.GlobalAddr(bounds)
		Loop(b, "buckets", ir.R(n), func(k ir.Reg) {
			// Scan the block counting and locally ordering this bucket's
			// members (private; the block is read-only here).
			cnt := b.Const(0)
			sig := b.Const(0)
			j := b.Const(0)
			LoopFrom(b, "scan", j, ir.C(blockLen/8), 1, func(jr ir.Reg) {
				idx := b.Mul(ir.R(jr), ir.C(8))
				ba := b.Add(ir.R(bb), ir.R(idx))
				v := b.Load(ir.R(ba), 0, ir.MemAttrs{Type: tyBlock, Path: "block"})
				bkt := b.Bin(ir.OpAnd, ir.R(v), ir.C(nBuckets-1))
				mine := b.Bin(ir.OpCmpEQ, ir.R(bkt), ir.R(k))
				If(b, ir.R(mine), func() {
					b.BinTo(cnt, ir.OpAdd, ir.R(cnt), ir.C(1))
					w := Busy(b, ir.R(v), 16)
					// Order-dependent signature: sig = sig*3 ^ w — a true
					// recurrence, so the inner scan itself cannot be
					// parallelized and HCCv3 targets the outer bucket loop
					// (the paper's low-trip-count story for bzip2).
					t := b.Mul(ir.R(sig), ir.C(3))
					b.BinTo(sig, ir.OpXor, ir.R(t), ir.R(w))
				}, nil)
			})
			// Publish the bucket boundary: shared, data-dependent order.
			mix := b.Add(ir.R(k), ir.R(sig))
			slot := b.Bin(ir.OpAnd, ir.R(mix), ir.C(nBuckets-1))
			ka := b.Add(ir.R(kb), ir.R(slot))
			old := b.Load(ir.R(ka), 0, ir.MemAttrs{Type: tyBkt, Path: "bounds"})
			nv := b.Add(ir.R(old), ir.R(cnt))
			b.Store(ir.R(ka), 0, ir.R(nv), ir.MemAttrs{Type: tyBkt, Path: "bounds"})
		})
		b.RetVoid()
	}

	// mtf(n): move-to-front pass (DOALL over positions).
	tyMS := p.NewType("mstats")
	mstats := p.AddGlobal("mstats", 2, tyMS)
	mtf := p.NewFunction("mtf", 1)
	{
		b := ir.NewBuilder(p, mtf)
		n := mtf.Params[0]
		bb := b.GlobalAddr(block)
		ob := b.GlobalAddr(outBuf)
		tb := b.GlobalAddr(mstats)
		Loop(b, "mtf", ir.R(n), func(i ir.Reg) {
			// Encoder state cells (shared, updated up front).
			s0 := b.Load(ir.R(tb), 0, ir.MemAttrs{Type: tyMS, Path: "mstats.count"})
			s1 := b.Add(ir.R(s0), ir.C(1))
			b.Store(ir.R(tb), 0, ir.R(s1), ir.MemAttrs{Type: tyMS, Path: "mstats.count"})
			x0 := b.Load(ir.R(tb), 1, ir.MemAttrs{Type: tyMS, Path: "mstats.mix"})
			x1 := b.Bin(ir.OpXor, ir.R(x0), ir.R(i))
			b.Store(ir.R(tb), 1, ir.R(x1), ir.MemAttrs{Type: tyMS, Path: "mstats.mix"})
			ba := b.Add(ir.R(bb), ir.R(i))
			v := b.Load(ir.R(ba), 0, ir.MemAttrs{Type: tyBlock, Path: "block"})
			w := Busy(b, ir.R(v), 100)
			oa := b.Add(ir.R(ob), ir.R(i))
			b.Store(ir.R(oa), 0, ir.R(w), ir.MemAttrs{Type: tyOut, Path: "mtfout"})
		})
		b.RetVoid()
	}

	// main(blocks): sort and encode each block.
	main := p.NewFunction("main", 1)
	{
		b := ir.NewBuilder(p, main)
		blocks := main.Params[0]
		Loop(b, "blocks", ir.R(blocks), func(k ir.Reg) {
			b.Call(bucketSort, ir.C(14))
			b.Call(mtf, ir.C(blockLen))
		})
		sum := b.Const(0)
		kb := b.GlobalAddr(bounds)
		Loop(b, "sum", ir.C(nBuckets), func(i ir.Reg) {
			ka := b.Add(ir.R(kb), ir.R(i))
			v := b.Load(ir.R(ka), 0, ir.MemAttrs{Type: tyBkt, Path: "bounds"})
			b.BinTo(sum, ir.OpAdd, ir.R(sum), ir.R(v))
		})
		b.Ret(ir.R(sum))
	}

	return &Workload{
		Name: "256.bzip2", Class: INT,
		Prog: p, Entry: main,
		TrainArgs:     []int64{2},
		RefArgs:       []int64{10},
		Phases:        23,
		PaperSpeedup:  12.0,
		PaperCoverage: [4]float64{0, 0.721, 0.723, 0.99},
	}
}
