package workloads

import (
	"helixrc/internal/ir"
)

// The workload DSL: thin structured-control helpers over the IR builder so
// each benchmark file reads like the C loops it models.
//
// Block names come from the builder's per-program counter
// (ir.Builder.FreshName), not a package global: two builds of the same
// workload in one process — concurrent Get calls from the parallel
// experiment engine included — produce byte-identical textual IR, which
// the same-process double-build test pins. (A process-global counter
// here once forced the fingerprint canonicalization to paper over
// build-dependent names; the canonicalization stays, as defense in
// depth, but it is no longer load-bearing for the DSL.)

// Loop emits a canonical counted loop:
//
//	for (i = 0; i < n; i++) { body(i) }
//
// The body callback may emit arbitrary control flow (If, nested Loop) as
// long as it leaves the builder in a fall-through block. The builder is
// left in the exit block.
func Loop(b *ir.Builder, name string, n ir.Value, body func(i ir.Reg)) {
	i := b.Const(0)
	LoopFrom(b, name, i, n, 1, body)
}

// LoopFrom is Loop with an existing start register and a custom step.
func LoopFrom(b *ir.Builder, name string, i ir.Reg, n ir.Value, step int64, body func(i ir.Reg)) {
	head := b.NewBlock(b.FreshName(name + ".head"))
	bodyB := b.NewBlock(b.FreshName(name + ".body"))
	exit := b.NewBlock(b.FreshName(name + ".exit"))
	b.Br(head)
	b.SetBlock(head)
	c := b.Bin(ir.OpCmpLT, ir.R(i), n)
	b.CondBr(ir.R(c), bodyB, exit)
	b.SetBlock(bodyB)
	body(i)
	b.BinTo(i, ir.OpAdd, ir.R(i), ir.C(step))
	b.Br(head)
	b.SetBlock(exit)
}

// While emits a condition-at-top loop. cond emits code computing the
// continue condition in the header and returns it; body runs while the
// condition is nonzero.
func While(b *ir.Builder, name string, cond func() ir.Reg, body func()) {
	head := b.NewBlock(b.FreshName(name + ".head"))
	bodyB := b.NewBlock(b.FreshName(name + ".body"))
	exit := b.NewBlock(b.FreshName(name + ".exit"))
	b.Br(head)
	b.SetBlock(head)
	c := cond()
	b.CondBr(ir.R(c), bodyB, exit)
	b.SetBlock(bodyB)
	body()
	b.Br(head)
	b.SetBlock(exit)
}

// If emits a two-armed conditional; either arm may be nil. Both arms fall
// through to a join block where the builder is left.
func If(b *ir.Builder, cond ir.Value, then func(), els func()) {
	thenB := b.NewBlock(b.FreshName("then"))
	join := b.NewBlock(b.FreshName("join"))
	elsB := join
	if els != nil {
		elsB = b.NewBlock(b.FreshName("else"))
	}
	b.CondBr(cond, thenB, elsB)
	b.SetBlock(thenB)
	if then != nil {
		then()
	}
	b.Br(join)
	if els != nil {
		b.SetBlock(elsB)
		els()
		b.Br(join)
	}
	b.SetBlock(join)
}

// Busy emits n single-cycle ALU instructions seeded by v, returning the
// final register — deterministic private work that cannot be optimized
// away. The work forms three independent chains merged at the end, so it
// carries realistic instruction-level parallelism (wider and out-of-order
// cores run it faster, as Figure 10 requires).
func Busy(b *ir.Builder, v ir.Value, n int) ir.Reg {
	r0 := b.Mov(v)
	r1 := b.Add(v, ir.C(0x9e37))
	r2 := b.Bin(ir.OpXor, v, ir.C(0x79b9))
	chains := [3]ir.Reg{r0, r1, r2}
	for k := 0; k < n-5; k++ {
		r := chains[k%3]
		switch k % 3 {
		case 0:
			b.BinTo(r, ir.OpAdd, ir.R(r), ir.C(int64(k)+1))
		case 1:
			b.BinTo(r, ir.OpXor, ir.R(r), ir.C(0x5bd1))
		default:
			b.BinTo(r, ir.OpShl, ir.R(r), ir.C(1))
		}
	}
	m := b.Add(ir.R(r0), ir.R(r1))
	return b.Bin(ir.OpXor, ir.R(m), ir.R(r2))
}

// FBusy is Busy with floating-point latencies (for the CFP analogues);
// three independent chains expose FP ILP.
func FBusy(b *ir.Builder, v ir.Value, n int) ir.Reg {
	r0 := b.Mov(v)
	r1 := b.Bin(ir.OpFAdd, v, ir.C(3))
	r2 := b.Bin(ir.OpFMul, v, ir.C(5))
	chains := [3]ir.Reg{r0, r1, r2}
	for k := 0; k < n-4; k++ {
		r := chains[k%3]
		if k%2 == 0 {
			b.BinTo(r, ir.OpFAdd, ir.R(r), ir.C(int64(k)+3))
		} else {
			b.BinTo(r, ir.OpFMul, ir.R(r), ir.C(3))
		}
	}
	m := b.Bin(ir.OpFAdd, ir.R(r0), ir.R(r1))
	return b.Bin(ir.OpFAdd, ir.R(m), ir.R(r2))
}
