package workloads

import "helixrc/internal/ir"

// Equake builds the 183.equake analogue: seismic wave propagation, whose
// kernel is a sparse matrix-vector product.
//
// Modelled loop: smvp — per-row dot product over the row's nonzeros
// (read-only matrix and vector; the y[row] result is affine in the row
// index, hence provably private) plus a global residual reduction. Memory
// stalls from streaming the sparse structure dominate the overhead, as
// Figure 12 shows for equake. Paper speedup: 10.1x.
func Equake() *Workload {
	p := ir.NewProgram("183.equake")
	tyVal := p.NewType("A[]")
	tyCol := p.NewType("col[]")
	tyX := p.NewType("x[]")
	tyY := p.NewType("y[]")

	const (
		nRows = 400
		nnz   = 8 // nonzeros per row
	)
	vals := p.AddGlobal("A", nRows*nnz, tyVal)
	fill(vals, 71, 97)
	cols := p.AddGlobal("col", nRows*nnz, tyCol)
	fill(cols, 72, nRows)
	xv := p.AddGlobal("x", nRows, tyX)
	fill(xv, 73, 63)
	yv := p.AddGlobal("y", nRows, tyY)

	// smvp(n): y = A*x, one row per iteration.
	smvp := p.NewFunction("smvp", 1)
	{
		b := ir.NewBuilder(p, smvp)
		n := smvp.Params[0]
		ab := b.GlobalAddr(vals)
		cb := b.GlobalAddr(cols)
		xb := b.GlobalAddr(xv)
		yb := b.GlobalAddr(yv)
		resid := b.Const(0)
		Loop(b, "rows", ir.R(n), func(row ir.Reg) {
			base := b.Mul(ir.R(row), ir.C(nnz))
			acc := b.Const(0)
			for k := int64(0); k < nnz; k++ {
				aa := b.Add(ir.R(ab), ir.R(base))
				av := b.Load(ir.R(aa), k, ir.MemAttrs{Type: tyVal, Path: "A"})
				ca := b.Add(ir.R(cb), ir.R(base))
				cv := b.Load(ir.R(ca), k, ir.MemAttrs{Type: tyCol, Path: "col"})
				xa := b.Add(ir.R(xb), ir.R(cv))
				xvv := b.Load(ir.R(xa), 0, ir.MemAttrs{Type: tyX, Path: "x"})
				t := b.Bin(ir.OpFMul, ir.R(av), ir.R(xvv))
				b.BinTo(acc, ir.OpFAdd, ir.R(acc), ir.R(t))
			}
			ya := b.Add(ir.R(yb), ir.R(row))
			b.Store(ir.R(ya), 0, ir.R(acc), ir.MemAttrs{Type: tyY, Path: "y"})
			b.BinTo(resid, ir.OpFAdd, ir.R(resid), ir.R(acc))
		})
		b.Ret(ir.R(resid))
	}

	// advance(n): time integration through a repurposed pointer, which
	// HCCv1's flow-insensitive analysis cannot separate (its Table 1
	// coverage stops at 77.1%).
	tyD := p.NewType("disp[]")
	disp := p.AddGlobal("disp", nRows, tyD)
	advance := p.NewFunction("advance", 1)
	{
		b := ir.NewBuilder(p, advance)
		n := advance.Params[0]
		yb := b.GlobalAddr(yv)
		q := b.Mov(ir.R(yb)) // bound to y...
		warm := b.Load(ir.R(q), 0, ir.MemAttrs{Type: tyY, Path: "y"})
		b.MovTo(q, ir.C(disp.Addr)) // ...then repurposed to disp
		_ = warm
		Loop(b, "advance", ir.R(n), func(i ir.Reg) {
			ya := b.Add(ir.R(yb), ir.R(i))
			v := b.Load(ir.R(ya), 0, ir.MemAttrs{Type: tyY, Path: "y"})
			w := FBusy(b, ir.R(v), 6)
			da := b.Add(ir.R(q), ir.R(i))
			b.Store(ir.R(da), 0, ir.R(w), ir.MemAttrs{Type: tyD, Path: "disp"})
		})
		b.RetVoid()
	}

	// main(steps): time-step the simulation.
	main := p.NewFunction("main", 1)
	{
		b := ir.NewBuilder(p, main)
		steps := main.Params[0]
		total := b.Const(0)
		Loop(b, "steps", ir.R(steps), func(s ir.Reg) {
			r := b.Call(smvp, ir.C(nRows))
			b.Call(advance, ir.C(nRows))
			b.BinTo(total, ir.OpXor, ir.R(total), ir.R(r))
		})
		b.Ret(ir.R(total))
	}

	return &Workload{
		Name: "183.equake", Class: FP,
		Prog: p, Entry: main,
		TrainArgs:     []int64{3},
		RefArgs:       []int64{14},
		Phases:        7,
		PaperSpeedup:  10.1,
		PaperCoverage: [4]float64{0, 0.771, 0.99, 0.99},
	}
}
