package workloads

import (
	"sync"
	"testing"
)

// TestSameProcessDoubleBuild pins the per-program block-name counter:
// building the same workload twice in one process must produce
// byte-identical *raw* textual IR, not merely an identical canonical
// fingerprint. (The DSL once minted block names from a process-global
// counter, so a second build shifted every name and only the
// positional canonicalization in ir.Fingerprint hid it.)
func TestSameProcessDoubleBuild(t *testing.T) {
	for _, name := range Names() {
		w1, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t1, t2 := w1.Prog.Text(w1.Entry), w2.Prog.Text(w2.Entry)
		if t1 != t2 {
			t.Errorf("%s: two same-process builds differ textually", name)
		}
		if f1, f2 := w1.Prog.Fingerprint(w1.Entry), w2.Prog.Fingerprint(w2.Entry); f1 != f2 {
			t.Errorf("%s: fingerprints differ: %s vs %s", name, f1, f2)
		}
	}
}

// TestConcurrentBuildsDeterministic builds every workload from many
// goroutines at once (the parallel experiment engine's access pattern)
// and requires each build to match the single-threaded text exactly —
// no shared counter state can leak between concurrent builds.
func TestConcurrentBuildsDeterministic(t *testing.T) {
	want := map[string]string{}
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = w.Prog.Text(w.Entry)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 4*len(want))
	for i := 0; i < 4; i++ {
		for _, name := range Names() {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				w, err := Get(name)
				if err != nil {
					errs <- name + ": " + err.Error()
					return
				}
				if w.Prog.Text(w.Entry) != want[name] {
					errs <- name + ": concurrent build diverged from solo build"
				}
			}(name)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestRegisterRejectsDuplicates pins Register's collision and
// validation behaviour.
func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register("", nil); err == nil {
		t.Error("Register accepted an empty name and nil builder")
	}
	if err := Register("164.gzip", Gzip); err == nil {
		t.Error("Register accepted a name colliding with the paper suite")
	}
	name := "test.register.unique"
	if err := Register(name, Gzip); err != nil {
		t.Fatalf("Register(%s): %v", name, err)
	}
	if err := Register(name, Gzip); err == nil {
		t.Error("Register accepted the same name twice")
	}
	if _, err := Get(name); err != nil {
		t.Errorf("Get(%s) after Register: %v", name, err)
	}
}
