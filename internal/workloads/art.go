package workloads

import "helixrc/internal/ir"

// Art builds the 179.art analogue: Adaptive Resonance Theory neural
// network image recognition.
//
// Modelled loops:
//   - f1: the F1-layer activation — one iteration per neuron (low trip
//     count, Figure 12's dominant art overhead) computing a dot product
//     over the input window with a winner-takes-all max reduction.
//   - match: the prototype match pass; its output pointer is repurposed
//     from an earlier binding, which the flow-insensitive HCCv1 analysis
//     cannot separate (Table 1: 84.1% vs 99% coverage).
//
// Paper speedup: 10.5x.
func Art() *Workload {
	p := ir.NewProgram("179.art")
	tyW := p.NewType("weights[]")
	tyIn := p.NewType("input[]")
	tyAct := p.NewType("act[]")
	tyMatch := p.NewType("match[]")

	const (
		nNeurons = 14 // low trip count, as the paper reports (8-20)
		nInputs  = 64
	)
	weights := p.AddGlobal("weights", nNeurons*nInputs, tyW)
	fill(weights, 81, 127)
	input := p.AddGlobal("input", nInputs, tyIn)
	fill(input, 82, 255)
	act := p.AddGlobal("act", nNeurons, tyAct)
	match := p.AddGlobal("match", nNeurons, tyMatch)

	// f1(n): activation of each neuron; winner via max reduction.
	f1 := p.NewFunction("f1", 1)
	{
		b := ir.NewBuilder(p, f1)
		n := f1.Params[0]
		wb := b.GlobalAddr(weights)
		ib := b.GlobalAddr(input)
		ab := b.GlobalAddr(act)
		winner := b.Const(-1 << 40)
		Loop(b, "f1", ir.R(n), func(neu ir.Reg) {
			base := b.Mul(ir.R(neu), ir.C(nInputs))
			acc := b.Const(0)
			j := b.Const(0)
			LoopFrom(b, "dot", j, ir.C(nInputs), 4, func(jr ir.Reg) {
				for u := int64(0); u < 4; u++ {
					wa0 := b.Add(ir.R(wb), ir.R(base))
					wa := b.Add(ir.R(wa0), ir.R(jr))
					wv := b.Load(ir.R(wa), u, ir.MemAttrs{Type: tyW, Path: "w"})
					ia := b.Add(ir.R(ib), ir.R(jr))
					iv := b.Load(ir.R(ia), u, ir.MemAttrs{Type: tyIn, Path: "in"})
					t := b.Bin(ir.OpFMul, ir.R(wv), ir.R(iv))
					b.BinTo(acc, ir.OpFAdd, ir.R(acc), ir.R(t))
				}
			})
			aa := b.Add(ir.R(ab), ir.R(neu))
			b.Store(ir.R(aa), 0, ir.R(acc), ir.MemAttrs{Type: tyAct, Path: "act"})
			b.BinTo(winner, ir.OpMax, ir.R(winner), ir.R(acc))
		})
		b.Ret(ir.R(winner))
	}

	// matchPass(n): prototype match scores through a repurposed pointer.
	matchPass := p.NewFunction("matchPass", 1)
	{
		b := ir.NewBuilder(p, matchPass)
		n := matchPass.Params[0]
		ab := b.GlobalAddr(act)
		q := b.Mov(ir.R(ab)) // first bound to act...
		warm := b.Load(ir.R(q), 0, ir.MemAttrs{Type: tyAct, Path: "act"})
		b.MovTo(q, ir.C(match.Addr)) // ...then repurposed to match
		_ = warm
		Loop(b, "match", ir.R(n), func(neu ir.Reg) {
			aa := b.Add(ir.R(ab), ir.R(neu))
			av := b.Load(ir.R(aa), 0, ir.MemAttrs{Type: tyAct, Path: "act"})
			w := FBusy(b, ir.R(av), 12)
			ma := b.Add(ir.R(q), ir.R(neu))
			b.Store(ir.R(ma), 0, ir.R(w), ir.MemAttrs{Type: tyMatch, Path: "match"})
		})
		b.RetVoid()
	}

	// main(images): recognize a stream of images.
	main := p.NewFunction("main", 1)
	{
		b := ir.NewBuilder(p, main)
		images := main.Params[0]
		total := b.Const(0)
		Loop(b, "images", ir.R(images), func(im ir.Reg) {
			w := b.Call(f1, ir.C(nNeurons))
			b.Call(matchPass, ir.C(nNeurons))
			b.BinTo(total, ir.OpAdd, ir.R(total), ir.R(w))
		})
		b.Ret(ir.R(total))
	}

	return &Workload{
		Name: "179.art", Class: FP,
		Prog: p, Entry: main,
		TrainArgs:     []int64{4},
		RefArgs:       []int64{30},
		Phases:        11,
		PaperSpeedup:  10.5,
		PaperCoverage: [4]float64{0, 0.841, 0.99, 0.99},
	}
}
