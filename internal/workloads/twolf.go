package workloads

import "helixrc/internal/ir"

// Twolf builds the 300.twolf analogue: standard-cell placement by
// simulated annealing.
//
// Modelled loops:
//   - delta: per-attempt cost-delta evaluation over the cells affected by
//     a swap. Low trip count (the affected neighborhood) with a
//     conditional update of the shared row-capacity table — Figure 12
//     reports low trip count as twolf's dominant overhead.
//   - wirelen: the full wire-length recomputation pass HCCv1/v2 also
//     select (Table 1: 62.4%).
//
// Paper speedup: 7.6x.
func Twolf() *Workload {
	p := ir.NewProgram("300.twolf")
	tyCell := p.NewType("cells[]")
	tyRow := p.NewType("rowcap[]")
	tyWire := p.NewType("wire[]")

	const (
		nCells = 768
		nRows  = 24
	)
	cells := p.AddGlobal("cells", nCells*2, tyCell)
	fill(cells, 41, 4096)
	// rowcap interleaves occupancy (even words) and temperature (odd
	// words); the fields have distinct source types but no distinguishing
	// access paths, so only the data-type alias tier separates them.
	tyRowT := p.NewType("rowtemp")
	rowcap := p.AddGlobal("rowcap", nRows*2, tyRow)
	fill(rowcap, 42, 50)
	wire := p.AddGlobal("wire", nCells, tyWire)

	// delta(att, count): evaluate `count` neighborhood cells of a swap.
	delta := p.NewFunction("delta", 2)
	{
		b := ir.NewBuilder(p, delta)
		att := delta.Params[0]
		count := delta.Params[1]
		cb := b.GlobalAddr(cells)
		rb := b.GlobalAddr(rowcap)
		Loop(b, "delta", ir.R(count), func(k ir.Reg) {
			ci := b.Add(ir.R(att), ir.R(k))
			cm := b.Bin(ir.OpAnd, ir.R(ci), ir.C(nCells-1))
			cbase := b.Mul(ir.R(cm), ir.C(2))
			ca := b.Add(ir.R(cb), ir.R(cbase))
			x := b.Load(ir.R(ca), 0, ir.MemAttrs{Type: tyCell, Path: "cell.x"})
			y := b.Load(ir.R(ca), 1, ir.MemAttrs{Type: tyCell, Path: "cell.y"})
			d0 := b.Sub(ir.R(x), ir.R(y))
			cost := Busy(b, ir.R(d0), 50)
			// Occasionally a move crosses rows and adjusts the shared
			// row occupancy (a real but infrequent dependence).
			row := b.Bin(ir.OpAnd, ir.R(y), ir.C(nRows-1))
			m0 := b.Bin(ir.OpAnd, ir.R(cost), ir.C(7))
			moved := b.Bin(ir.OpCmpEQ, ir.R(m0), ir.C(0))
			If(b, ir.R(moved), func() {
				rbase := b.Mul(ir.R(row), ir.C(2))
				ra := b.Add(ir.R(rb), ir.R(rbase))
				rv := b.Load(ir.R(ra), 0, ir.MemAttrs{Type: tyRow})
				rn := b.Add(ir.R(rv), ir.C(1))
				b.Store(ir.R(ra), 0, ir.R(rn), ir.MemAttrs{Type: tyRow})
				tv := b.Load(ir.R(ra), 1, ir.MemAttrs{Type: tyRowT})
				tn := b.Bin(ir.OpXor, ir.R(tv), ir.R(cost))
				b.Store(ir.R(ra), 1, ir.R(tn), ir.MemAttrs{Type: tyRowT})
			}, nil)
		})
		b.RetVoid()
	}

	// wirelen(n): full wire-length pass (DOALL, long iterations).
	tyWS := p.NewType("wstats")
	wstats := p.AddGlobal("wstats", 2, tyWS)
	wirelen := p.NewFunction("wirelen", 1)
	{
		b := ir.NewBuilder(p, wirelen)
		n := wirelen.Params[0]
		cb := b.GlobalAddr(cells)
		wb := b.GlobalAddr(wire)
		tb := b.GlobalAddr(wstats)
		Loop(b, "wirelen", ir.R(n), func(c ir.Reg) {
			// Global wire statistics (shared cells, updated up front).
			s0 := b.Load(ir.R(tb), 0, ir.MemAttrs{Type: tyWS, Path: "wstats.sum"})
			s1 := b.Add(ir.R(s0), ir.R(c))
			b.Store(ir.R(tb), 0, ir.R(s1), ir.MemAttrs{Type: tyWS, Path: "wstats.sum"})
			m0 := b.Load(ir.R(tb), 1, ir.MemAttrs{Type: tyWS, Path: "wstats.max"})
			m1 := b.Bin(ir.OpMax, ir.R(m0), ir.R(c))
			b.Store(ir.R(tb), 1, ir.R(m1), ir.MemAttrs{Type: tyWS, Path: "wstats.max"})
			cbase := b.Mul(ir.R(c), ir.C(2))
			ca := b.Add(ir.R(cb), ir.R(cbase))
			x := b.Load(ir.R(ca), 0, ir.MemAttrs{Type: tyCell, Path: "cell.x"})
			y := b.Load(ir.R(ca), 1, ir.MemAttrs{Type: tyCell, Path: "cell.y"})
			s := b.Add(ir.R(x), ir.R(y))
			wv := Busy(b, ir.R(s), 70)
			wa := b.Add(ir.R(wb), ir.R(c))
			b.Store(ir.R(wa), 0, ir.R(wv), ir.MemAttrs{Type: tyWire, Path: "wire"})
		})
		b.RetVoid()
	}

	// main(attempts, perAttempt): anneal; full pass every 64 attempts.
	main := p.NewFunction("main", 2)
	{
		b := ir.NewBuilder(p, main)
		attempts := main.Params[0]
		per := main.Params[1]
		Loop(b, "attempts", ir.R(attempts), func(a ir.Reg) {
			b.Call(delta, ir.R(a), ir.R(per))
			low := b.Bin(ir.OpAnd, ir.R(a), ir.C(63))
			isZero := b.Bin(ir.OpCmpEQ, ir.R(low), ir.C(0))
			If(b, ir.R(isZero), func() {
				b.Call(wirelen, ir.C(nCells))
			}, nil)
		})
		sum := b.Const(0)
		rb := b.GlobalAddr(rowcap)
		Loop(b, "sum", ir.C(nRows*2), func(i ir.Reg) {
			ra := b.Add(ir.R(rb), ir.R(i))
			v := b.Load(ir.R(ra), 0, ir.MemAttrs{Type: tyRow, Path: "rowcap"})
			b.BinTo(sum, ir.OpAdd, ir.R(sum), ir.R(v))
		})
		b.Ret(ir.R(sum))
	}

	return &Workload{
		Name: "300.twolf", Class: INT,
		Prog: p, Entry: main,
		TrainArgs:     []int64{80, 12},
		RefArgs:       []int64{640, 12},
		Phases:        18,
		PaperSpeedup:  7.6,
		PaperCoverage: [4]float64{0, 0.624, 0.624, 0.99},
	}
}
