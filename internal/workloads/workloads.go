// Package workloads builds the ten benchmark analogues used by the
// evaluation: six SPEC CINT2000 and four SPEC CFP2000 C programs
// re-expressed as IR programs whose hot loops reproduce the loop-level
// character the paper reports — iteration lengths (Figure 4a), dependence
// structure and distance (Figure 4b/c), trip counts, per-benchmark
// overhead mix (Figure 12) and compiler-version coverage (Table 1).
//
// The analogues are not the SPEC sources (which are licensed); each file
// documents which loops it models and which knobs were tuned to match the
// published statistics.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"helixrc/internal/ir"
)

// Class partitions the suite like the paper's figures.
type Class int

// Benchmark classes.
const (
	INT Class = iota
	FP
)

// String names the class.
func (c Class) String() string {
	if c == FP {
		return "CFP2000"
	}
	return "CINT2000"
}

// Workload is one runnable benchmark analogue.
type Workload struct {
	Name  string
	Class Class
	Prog  *ir.Program
	Entry *ir.Function
	// TrainArgs is the profiling/selection input; RefArgs the measured one.
	TrainArgs []int64
	RefArgs   []int64
	// Phases mirrors Table 1's SimPoint phase counts (metadata only).
	Phases int
	// PaperSpeedup is the HELIX-RC speedup Figure 12 reports, used by the
	// experiment harness to compare shapes.
	PaperSpeedup float64
	// PaperCoverage maps compiler level (1..3) to Table 1 coverage.
	PaperCoverage [4]float64
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func() *Workload{
		"164.gzip":   Gzip,
		"175.vpr":    Vpr,
		"197.parser": Parser,
		"300.twolf":  Twolf,
		"181.mcf":    Mcf,
		"256.bzip2":  Bzip2,
		"183.equake": Equake,
		"179.art":    Art,
		"188.ammp":   Ammp,
		"177.mesa":   Mesa,
	}
)

// Register adds a named workload builder to the registry, making it
// resolvable through Get (and therefore through the whole cached
// harness path) alongside the ten SPEC analogues. The builder must
// return a fresh, deterministic workload on every call: HCC mutates
// programs, so Get hands each caller its own copy, and the harness
// keys artifacts by content fingerprint, so two calls must produce
// byte-identical textual IR. internal/scenarios registers its
// generated families here; Names() deliberately keeps reporting only
// the paper suite, so every figure stays byte-identical.
func Register(name string, build func() *Workload) error {
	if name == "" || build == nil {
		return fmt.Errorf("workloads: Register needs a name and a builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := registry[name]; ok {
		return fmt.Errorf("workloads: %q is already registered", name)
	}
	registry[name] = build
	return nil
}

// Names returns all workload names, INT first then FP, in paper order.
func Names() []string {
	return []string{
		"164.gzip", "175.vpr", "197.parser", "300.twolf", "181.mcf", "256.bzip2",
		"183.equake", "179.art", "188.ammp", "177.mesa",
	}
}

// IntNames returns the CINT2000 subset.
func IntNames() []string { return Names()[:6] }

// FPNames returns the CFP2000 subset.
func FPNames() []string { return Names()[6:] }

// Get builds a workload by name.
func Get(name string) (*Workload, error) {
	registryMu.RLock()
	f, ok := registry[name]
	if !ok {
		defer registryMu.RUnlock()
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("workloads: unknown %q (have %v)", name, known)
	}
	registryMu.RUnlock()
	return f(), nil
}

// Registered lists every registered workload name in sorted order —
// the paper suite plus any generated scenarios — for tools that
// enumerate the full registry rather than the paper figures.
func Registered() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// All builds the full suite in paper order.
func All() []*Workload {
	out := make([]*Workload, 0, len(registry))
	for _, n := range Names() {
		w, _ := Get(n)
		out = append(out, w)
	}
	return out
}

// lcg is a deterministic pseudo-random sequence for data initialization.
type lcg uint64

func newLCG(seed uint64) *lcg { l := lcg(seed*2862933555777941757 + 3037000493); return &l }

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l >> 17)
}

// intn returns a value in [0, n).
func (l *lcg) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(l.next() % uint64(n))
}

// fill initializes a global with bounded pseudo-random values.
func fill(g *ir.Global, seed uint64, bound int64) {
	r := newLCG(seed)
	g.Init = make([]int64, g.Size)
	for i := range g.Init {
		g.Init[i] = r.intn(bound)
	}
}
