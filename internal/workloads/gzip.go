package workloads

import "helixrc/internal/ir"

// Gzip builds the 164.gzip analogue: LZ77 deflate.
//
// Modelled loops:
//   - deflate: the per-position hot loop — hash the next three bytes,
//     consult and update the hash head table (a genuine loop-carried
//     memory dependence through a data-dependent index), scan the match
//     candidate, and update the literal-frequency histogram (a second
//     independent shared cluster). Two active sequential segments per
//     iteration reproduce gzip's "many wait/signal instructions" and
//     dependence-waiting overheads; the paper reports gzip as the
//     hardest benchmark (3.0x).
//   - codelens: the per-symbol code-length construction — long-iteration
//     DOALL work that HCCv1/v2 can also select, matching Table 1's 42.3%
//     coverage for those compilers.
func Gzip() *Workload {
	p := ir.NewProgram("164.gzip")
	tyWin := p.NewType("window[]")
	tyHash := p.NewType("head[]")
	tyFreq := p.NewType("freq[]")
	tyCode := p.NewType("codes[]")

	const (
		winSize  = 4096
		hashSize = 64
		freqSize = 32
		nSyms    = 400
	)
	window := p.AddGlobal("window", winSize, tyWin)
	fill(window, 11, 250)
	head := p.AddGlobal("head", hashSize, tyHash)
	freq := p.AddGlobal("freq", freqSize, tyFreq)
	codes := p.AddGlobal("codes", nSyms, tyCode)
	tyStat := p.NewType("lenstats")
	stats := p.AddGlobal("lenstats", 2, tyStat)

	// crc32 update: a pure library routine. Below the library-call alias
	// tier the compiler must assume it clobbers memory, which wrecks the
	// measured dependence accuracy of the deflate loop (Figure 2's final
	// ladder step).
	crcUpdate := &ir.Extern{
		Name:    "crc32_update",
		Latency: 2,
		Result: func(a []int64) int64 {
			x := uint64(a[0]) ^ uint64(a[1])<<7
			x ^= x >> 13
			return int64(x * 0x9e3779b97f4a7c15 >> 33)
		},
	}

	// deflate(start, len): the small hot loop.
	deflate := p.NewFunction("deflate", 2)
	{
		b := ir.NewBuilder(p, deflate)
		start := deflate.Params[0]
		length := deflate.Params[1]
		wb := b.GlobalAddr(window)
		hb := b.GlobalAddr(head)
		fb := b.GlobalAddr(freq)
		end := b.Add(ir.R(start), ir.R(length))
		pos := b.Mov(ir.R(start))
		LoopFrom(b, "deflate", pos, ir.R(end), 1, func(pr ir.Reg) {
			wa := b.Add(ir.R(wb), ir.R(pr))
			c0 := b.Load(ir.R(wa), 0, ir.MemAttrs{Type: tyWin, Path: "win"})
			c1 := b.Load(ir.R(wa), 1, ir.MemAttrs{Type: tyWin, Path: "win"})
			c2 := b.Load(ir.R(wa), 2, ir.MemAttrs{Type: tyWin, Path: "win"})
			h0 := b.Bin(ir.OpShl, ir.R(c0), ir.C(5))
			h1 := b.Bin(ir.OpXor, ir.R(h0), ir.R(c1))
			h2 := b.Bin(ir.OpShl, ir.R(h1), ir.C(2))
			h3 := b.Bin(ir.OpXor, ir.R(h2), ir.R(c2))
			h := b.Bin(ir.OpAnd, ir.R(h3), ir.C(hashSize-1))
			// Hash head consult + update: segment 1.
			ha := b.Add(ir.R(hb), ir.R(h))
			cand := b.Load(ir.R(ha), 0, ir.MemAttrs{Type: tyHash, Path: "head"})
			b.Store(ir.R(ha), 0, ir.R(pr), ir.MemAttrs{Type: tyHash, Path: "head"})
			// Match scan against the candidate (window is read-only).
			cm := b.Bin(ir.OpAnd, ir.R(cand), ir.C(winSize-8))
			ca := b.Add(ir.R(wb), ir.R(cm))
			mlen := b.Const(0)
			for j := int64(0); j < 4; j++ {
				mc := b.Load(ir.R(ca), j, ir.MemAttrs{Type: tyWin, Path: "win"})
				pc := b.Load(ir.R(wa), j+3, ir.MemAttrs{Type: tyWin, Path: "win"})
				eq := b.Bin(ir.OpCmpEQ, ir.R(mc), ir.R(pc))
				b.BinTo(mlen, ir.OpAdd, ir.R(mlen), ir.R(eq))
			}
			// Literal frequency histogram: segment 2.
			sym := b.Bin(ir.OpAnd, ir.R(c0), ir.C(freqSize-1))
			fa := b.Add(ir.R(fb), ir.R(sym))
			fv := b.Load(ir.R(fa), 0, ir.MemAttrs{Type: tyFreq, Path: "freq"})
			fn := b.Add(ir.R(fv), ir.C(1))
			b.Store(ir.R(fa), 0, ir.R(fn), ir.MemAttrs{Type: tyFreq, Path: "freq"})
			// Output-bit accounting, including the running CRC (a pure
			// library call).
			crc := b.CallExtern(crcUpdate, ir.R(c0), ir.R(mlen))
			w := Busy(b, ir.R(crc), 20)
			_ = w
		})
		b.RetVoid()
	}

	// codelens(n): per-symbol code length construction (DOALL).
	codelens := p.NewFunction("codelens", 1)
	{
		b := ir.NewBuilder(p, codelens)
		n := codelens.Params[0]
		fb := b.GlobalAddr(freq)
		cb := b.GlobalAddr(codes)
		sb := b.GlobalAddr(stats)
		Loop(b, "codelens", ir.R(n), func(s ir.Reg) {
			// Two small shared statistics cells, updated first thing every
			// iteration: each becomes its own sequential segment under
			// HCCv3 (cheap on the ring, two coherence pulls per iteration
			// on conventional hardware — the Figure 9 effect).
			t0 := b.Load(ir.R(sb), 0, ir.MemAttrs{Type: tyStat, Path: "lenstats.total"})
			t1 := b.Add(ir.R(t0), ir.R(s))
			b.Store(ir.R(sb), 0, ir.R(t1), ir.MemAttrs{Type: tyStat, Path: "lenstats.total"})
			m0 := b.Load(ir.R(sb), 1, ir.MemAttrs{Type: tyStat, Path: "lenstats.max"})
			m1 := b.Bin(ir.OpMax, ir.R(m0), ir.R(s))
			b.Store(ir.R(sb), 1, ir.R(m1), ir.MemAttrs{Type: tyStat, Path: "lenstats.max"})
			fi := b.Bin(ir.OpAnd, ir.R(s), ir.C(freqSize-1))
			fa := b.Add(ir.R(fb), ir.R(fi))
			fv := b.Load(ir.R(fa), 0, ir.MemAttrs{Type: tyFreq, Path: "freq"})
			w := Busy(b, ir.R(fv), 100)
			lo := b.Bin(ir.OpAnd, ir.R(w), ir.C(15))
			ln := b.Add(ir.R(lo), ir.C(1))
			ca := b.Add(ir.R(cb), ir.R(s))
			b.Store(ir.R(ca), 0, ir.R(ln), ir.MemAttrs{Type: tyCode, Path: "codes"})
		})
		b.RetVoid()
	}

	// main(blocks, blocklen): deflate blocks, rebuild code lengths after
	// each, checksum.
	main := p.NewFunction("main", 2)
	{
		b := ir.NewBuilder(p, main)
		blocks := main.Params[0]
		blockLen := main.Params[1]
		Loop(b, "blocks", ir.R(blocks), func(k ir.Reg) {
			off := b.Mul(ir.R(k), ir.R(blockLen))
			start := b.Bin(ir.OpAnd, ir.R(off), ir.C(winSize/2-1))
			b.Call(deflate, ir.R(start), ir.R(blockLen))
			b.Call(codelens, ir.C(nSyms))
		})
		sum := b.Const(0)
		fb := b.GlobalAddr(freq)
		cb := b.GlobalAddr(codes)
		Loop(b, "sum", ir.C(freqSize), func(i ir.Reg) {
			fa := b.Add(ir.R(fb), ir.R(i))
			v := b.Load(ir.R(fa), 0, ir.MemAttrs{Type: tyFreq, Path: "freq"})
			ca := b.Add(ir.R(cb), ir.R(i))
			c := b.Load(ir.R(ca), 0, ir.MemAttrs{Type: tyCode, Path: "codes"})
			t := b.Add(ir.R(v), ir.R(c))
			b.BinTo(sum, ir.OpAdd, ir.R(sum), ir.R(t))
		})
		b.Ret(ir.R(sum))
	}

	return &Workload{
		Name: "164.gzip", Class: INT,
		Prog: p, Entry: main,
		TrainArgs:     []int64{3, 200},
		RefArgs:       []int64{10, 260},
		Phases:        12,
		PaperSpeedup:  3.0,
		PaperCoverage: [4]float64{0, 0.423, 0.423, 0.982},
	}
}
