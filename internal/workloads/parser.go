package workloads

import "helixrc/internal/ir"

// Parser builds the 197.parser analogue: natural-language link parsing
// with a dictionary.
//
// Modelled loops:
//   - link: the per-word hot loop — hash the word, probe the dictionary
//     with open addressing (loads and a conditional insert through a
//     data-dependent index: a real loop-carried memory dependence), then
//     private disjunct-matching work. The dictionary is the largest ring
//     working set in the suite, which is why Figure 11d shows parser as
//     the only node-memory-sensitive benchmark.
//   - prune: the per-sentence pruning pass with long private iterations,
//     selectable by HCCv1/v2 (Table 1: 60.2%).
//
// Paper speedup: 7.3x.
func Parser() *Workload {
	p := ir.NewProgram("197.parser")
	tyText := p.NewType("text[]")
	tyDict := p.NewType("dict[]")
	tyExpr := p.NewType("expr[]")

	const (
		textLen  = 4096
		dictSize = 192 // the largest shared working set in the suite
		exprSize = 512
	)
	text := p.AddGlobal("text", textLen, tyText)
	fill(text, 31, 9973)
	dict := p.AddGlobal("dict", dictSize, tyDict)
	expr := p.AddGlobal("expr", exprSize, tyExpr)
	fill(expr, 32, 255)

	// link(start, words): the per-word dictionary loop. Dictionary
	// entries are {word, count} pairs; the probe pointer is reused from
	// an earlier binding to the expression table, which only a
	// flow-sensitive pointer analysis separates, and the word/count
	// fields are only separated by path-based location naming.
	link := p.NewFunction("link", 2)
	{
		b := ir.NewBuilder(p, link)
		start := link.Params[0]
		words := link.Params[1]
		tb := b.GlobalAddr(text)
		eb := b.GlobalAddr(expr)
		// q warms the expression table, then is rebound to the dictionary.
		q := b.Mov(ir.R(eb))
		warm := b.Load(ir.R(q), 0, ir.MemAttrs{Type: tyExpr, Path: "expr"})
		_ = warm
		b.MovTo(q, ir.C(dict.Addr))
		end := b.Add(ir.R(start), ir.R(words))
		w := b.Mov(ir.R(start))
		LoopFrom(b, "link", w, ir.R(end), 1, func(wr ir.Reg) {
			ta := b.Add(ir.R(tb), ir.R(wr))
			word := b.Load(ir.R(ta), 0, ir.MemAttrs{Type: tyText, Path: "text"})
			h0 := b.Mul(ir.R(word), ir.C(2654435761))
			h := b.Bin(ir.OpAnd, ir.R(h0), ir.C(dictSize/2-1))
			// Dictionary probe + conditional insert (sequential segment).
			ebase := b.Mul(ir.R(h), ir.C(2))
			da := b.Add(ir.R(q), ir.R(ebase))
			e0 := b.Load(ir.R(da), 0, ir.MemAttrs{Type: tyDict, Path: "dict.word"})
			hit := b.Bin(ir.OpCmpEQ, ir.R(e0), ir.R(word))
			If(b, ir.R(hit), nil, func() {
				b.Store(ir.R(da), 0, ir.R(word), ir.MemAttrs{Type: tyDict, Path: "dict.word"})
			})
			// Probe statistics live in the entry's count field.
			c0 := b.Load(ir.R(da), 1, ir.MemAttrs{Type: tyDict, Path: "dict.count"})
			c1 := b.Add(ir.R(c0), ir.C(1))
			b.Store(ir.R(da), 1, ir.R(c1), ir.MemAttrs{Type: tyDict, Path: "dict.count"})
			// Private disjunct matching against the expression table. The
			// probe pointer q once pointed here: a flow-insensitive
			// analysis reports false dependences between the dictionary
			// stores and these reads.
			ei := b.Bin(ir.OpAnd, ir.R(word), ir.C(exprSize-1))
			ea := b.Add(ir.R(eb), ir.R(ei))
			ev := b.Load(ir.R(ea), 0, ir.MemAttrs{Type: tyExpr, Path: "expr"})
			m := Busy(b, ir.R(ev), 36)
			_ = m
		})
		b.RetVoid()
	}

	// prune(n): per-sentence pruning with long private iterations.
	tyPr := p.NewType("pruned[]")
	pruned := p.AddGlobal("pruned", exprSize, tyPr)
	tyPS := p.NewType("pstats")
	pstats := p.AddGlobal("pstats", 2, tyPS)
	prune := p.NewFunction("prune", 1)
	{
		b := ir.NewBuilder(p, prune)
		n := prune.Params[0]
		eb := b.GlobalAddr(expr)
		pb := b.GlobalAddr(pruned)
		sb := b.GlobalAddr(pstats)
		Loop(b, "prune", ir.R(n), func(i ir.Reg) {
			// Pruning statistics (shared cells, updated up front).
			c0 := b.Load(ir.R(sb), 0, ir.MemAttrs{Type: tyPS, Path: "pstats.count"})
			c1 := b.Add(ir.R(c0), ir.C(1))
			b.Store(ir.R(sb), 0, ir.R(c1), ir.MemAttrs{Type: tyPS, Path: "pstats.count"})
			d0 := b.Load(ir.R(sb), 1, ir.MemAttrs{Type: tyPS, Path: "pstats.mix"})
			d1 := b.Bin(ir.OpXor, ir.R(d0), ir.R(i))
			b.Store(ir.R(sb), 1, ir.R(d1), ir.MemAttrs{Type: tyPS, Path: "pstats.mix"})
			ea := b.Add(ir.R(eb), ir.R(i))
			v := b.Load(ir.R(ea), 0, ir.MemAttrs{Type: tyExpr, Path: "expr"})
			wv := Busy(b, ir.R(v), 80)
			pa := b.Add(ir.R(pb), ir.R(i))
			b.Store(ir.R(pa), 0, ir.R(wv), ir.MemAttrs{Type: tyPr, Path: "pruned"})
		})
		b.RetVoid()
	}

	// main(sentences, wordsPer): parse sentences, pruning after each.
	main := p.NewFunction("main", 2)
	{
		b := ir.NewBuilder(p, main)
		sentences := main.Params[0]
		wordsPer := main.Params[1]
		Loop(b, "sentences", ir.R(sentences), func(s ir.Reg) {
			off := b.Mul(ir.R(s), ir.R(wordsPer))
			st := b.Bin(ir.OpAnd, ir.R(off), ir.C(textLen/2-1))
			b.Call(link, ir.R(st), ir.R(wordsPer))
			b.Call(prune, ir.C(exprSize))
		})
		sum := b.Const(0)
		db := b.GlobalAddr(dict)
		Loop(b, "sum", ir.C(dictSize), func(i ir.Reg) {
			da := b.Add(ir.R(db), ir.R(i))
			v := b.Load(ir.R(da), 0, ir.MemAttrs{Type: tyDict, Path: "dict"})
			b.BinTo(sum, ir.OpAdd, ir.R(sum), ir.R(v))
		})
		b.Ret(ir.R(sum))
	}

	return &Workload{
		Name: "197.parser", Class: INT,
		Prog: p, Entry: main,
		TrainArgs:     []int64{3, 180},
		RefArgs:       []int64{12, 220},
		Phases:        19,
		PaperSpeedup:  7.3,
		PaperCoverage: [4]float64{0, 0.602, 0.602, 0.987},
	}
}
