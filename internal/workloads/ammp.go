package workloads

import "helixrc/internal/ir"

// Ammp builds the 188.ammp analogue: molecular dynamics (ODE integration
// of atom motion under force fields).
//
// Modelled loops:
//   - forces: per-atom non-bonded force evaluation — long floating-point
//     iterations over the atom's neighbor list (read-only positions) with
//     energy and virial accumulators (parallel reductions): ammp's
//     Figure 12 overhead profile is dominated by added instructions, with
//     very little dependence waiting.
//   - integrate: the velocity/position update pass through a repurposed
//     pointer, which HCCv1's flow-insensitive analysis cannot separate
//     (Table 1: 60.2% vs 99%).
//
// Paper speedup: 12.5x.
func Ammp() *Workload {
	p := ir.NewProgram("188.ammp")
	tyPos := p.NewType("pos[]")
	tyNbr := p.NewType("nbr[]")
	tyVel := p.NewType("vel[]")

	const (
		nAtoms = 256
		nNbrs  = 12
	)
	pos := p.AddGlobal("pos", nAtoms*3, tyPos)
	fill(pos, 91, 2048)
	nbr := p.AddGlobal("nbr", nAtoms*nNbrs, tyNbr)
	fill(nbr, 92, nAtoms)
	vel := p.AddGlobal("vel", nAtoms*3, tyVel)
	fill(vel, 93, 31)

	// forces(n): per-atom force evaluation.
	forces := p.NewFunction("forces", 1)
	{
		b := ir.NewBuilder(p, forces)
		n := forces.Params[0]
		pb := b.GlobalAddr(pos)
		nb := b.GlobalAddr(nbr)
		energy := b.Const(0)
		virial := b.Const(0)
		Loop(b, "forces", ir.R(n), func(a ir.Reg) {
			base := b.Mul(ir.R(a), ir.C(3))
			pa := b.Add(ir.R(pb), ir.R(base))
			ax := b.Load(ir.R(pa), 0, ir.MemAttrs{Type: tyPos, Path: "pos.x"})
			ay := b.Load(ir.R(pa), 1, ir.MemAttrs{Type: tyPos, Path: "pos.y"})
			az := b.Load(ir.R(pa), 2, ir.MemAttrs{Type: tyPos, Path: "pos.z"})
			nbase := b.Mul(ir.R(a), ir.C(nNbrs))
			na := b.Add(ir.R(nb), ir.R(nbase))
			fsum := b.Const(0)
			for k := int64(0); k < nNbrs; k++ {
				nv := b.Load(ir.R(na), k, ir.MemAttrs{Type: tyNbr, Path: "nbr"})
				obase := b.Mul(ir.R(nv), ir.C(3))
				oa := b.Add(ir.R(pb), ir.R(obase))
				ox := b.Load(ir.R(oa), 0, ir.MemAttrs{Type: tyPos, Path: "pos.x"})
				dx := b.Bin(ir.OpFSub, ir.R(ax), ir.R(ox))
				d2 := b.Bin(ir.OpFMul, ir.R(dx), ir.R(dx))
				b.BinTo(fsum, ir.OpFAdd, ir.R(fsum), ir.R(d2))
			}
			fy := b.Bin(ir.OpFMul, ir.R(ay), ir.C(3))
			fz := b.Bin(ir.OpFMul, ir.R(az), ir.C(5))
			fyz := b.Bin(ir.OpFAdd, ir.R(fy), ir.R(fz))
			f := b.Bin(ir.OpFAdd, ir.R(fsum), ir.R(fyz))
			b.BinTo(energy, ir.OpFAdd, ir.R(energy), ir.R(f))
			b.BinTo(virial, ir.OpFAdd, ir.R(virial), ir.R(fsum))
		})
		r := b.Add(ir.R(energy), ir.R(virial))
		b.Ret(ir.R(r))
	}

	// integrate(n): position update through a repurposed pointer.
	integrate := p.NewFunction("integrate", 1)
	{
		b := ir.NewBuilder(p, integrate)
		n := integrate.Params[0]
		vb := b.GlobalAddr(vel)
		q := b.Mov(ir.R(vb)) // bound to velocities...
		warm := b.Load(ir.R(q), 0, ir.MemAttrs{Type: tyVel, Path: "vel"})
		b.MovTo(q, ir.C(pos.Addr)) // ...then repurposed to positions
		_ = warm
		Loop(b, "integrate", ir.R(n), func(i ir.Reg) {
			va := b.Add(ir.R(vb), ir.R(i))
			vv := b.Load(ir.R(va), 0, ir.MemAttrs{Type: tyVel, Path: "vel"})
			w := FBusy(b, ir.R(vv), 10)
			qa := b.Add(ir.R(q), ir.R(i))
			old := b.Load(ir.R(qa), 0, ir.MemAttrs{Type: tyPos, Path: "pos.any"})
			nv := b.Bin(ir.OpFAdd, ir.R(old), ir.R(w))
			wrapped := b.Bin(ir.OpAnd, ir.R(nv), ir.C((1<<40)-1))
			b.Store(ir.R(qa), 0, ir.R(wrapped), ir.MemAttrs{Type: tyPos, Path: "pos.any"})
		})
		b.RetVoid()
	}

	// main(steps): force evaluation + integration per time step.
	main := p.NewFunction("main", 1)
	{
		b := ir.NewBuilder(p, main)
		steps := main.Params[0]
		total := b.Const(0)
		Loop(b, "steps", ir.R(steps), func(s ir.Reg) {
			e := b.Call(forces, ir.C(nAtoms))
			b.Call(integrate, ir.C(nAtoms*3))
			b.BinTo(total, ir.OpXor, ir.R(total), ir.R(e))
		})
		b.Ret(ir.R(total))
	}

	return &Workload{
		Name: "188.ammp", Class: FP,
		Prog: p, Entry: main,
		TrainArgs:     []int64{2},
		RefArgs:       []int64{10},
		Phases:        23,
		PaperSpeedup:  12.5,
		PaperCoverage: [4]float64{0, 0.602, 0.99, 0.99},
	}
}
