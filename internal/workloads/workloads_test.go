package workloads

import (
	"testing"
	"testing/quick"

	"helixrc/internal/cfg"
	"helixrc/internal/interp"
	"helixrc/internal/ir"
)

func TestAllWorkloadsBuildAndVerify(t *testing.T) {
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := w.Prog.Verify(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if w.Entry == nil || w.Prog == nil {
			t.Errorf("%s: missing program or entry", name)
		}
		if len(w.TrainArgs) != len(w.Entry.Params) || len(w.RefArgs) != len(w.Entry.Params) {
			t.Errorf("%s: argument arity mismatch", name)
		}
		if w.PaperSpeedup <= 0 || w.Phases <= 0 {
			t.Errorf("%s: paper metadata missing", name)
		}
	}
}

func TestWorkloadsRunDeterministically(t *testing.T) {
	for _, name := range Names() {
		w1, _ := Get(name)
		r1, err := interp.Run(w1.Prog, w1.Entry, 0, w1.TrainArgs...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		w2, _ := Get(name)
		r2, err := interp.Run(w2.Prog, w2.Entry, 0, w2.TrainArgs...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r1.RetValue != r2.RetValue {
			t.Errorf("%s: nondeterministic result %d vs %d", name, r1.RetValue, r2.RetValue)
		}
		if r1.RetValue == 0 {
			t.Errorf("%s: checksum is zero — result probably unused", name)
		}
	}
}

func TestWorkloadsHaveLoops(t *testing.T) {
	for _, name := range Names() {
		w, _ := Get(name)
		loops := 0
		for _, f := range w.Prog.Funcs {
			g := cfg.New(f)
			loops += len(cfg.FindLoops(g).Loops)
		}
		if loops < 3 {
			t.Errorf("%s: only %d loops; analogues should be loop-rich", name, loops)
		}
	}
}

func TestClassPartition(t *testing.T) {
	ints, fps := 0, 0
	for _, name := range Names() {
		w, _ := Get(name)
		switch w.Class {
		case INT:
			ints++
		case FP:
			fps++
		}
	}
	if ints != 6 || fps != 4 {
		t.Errorf("suite split = %d INT + %d FP, want 6 + 4", ints, fps)
	}
	if INT.String() == FP.String() {
		t.Error("class names must differ")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("999.nope"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestLCGDeterminismAndBounds(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		if bound == 0 {
			return true
		}
		a := newLCG(seed)
		b := newLCG(seed)
		for i := 0; i < 16; i++ {
			x, y := a.intn(int64(bound)), b.intn(int64(bound))
			if x != y || x < 0 || x >= int64(bound) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDSLLoopAndIf(t *testing.T) {
	p := ir.NewProgram("dsl")
	fn := p.NewFunction("main", 1)
	b := ir.NewBuilder(p, fn)
	sum := b.Const(0)
	Loop(b, "l", ir.R(fn.Params[0]), func(i ir.Reg) {
		odd := b.Bin(ir.OpAnd, ir.R(i), ir.C(1))
		If(b, ir.R(odd), func() {
			b.BinTo(sum, ir.OpAdd, ir.R(sum), ir.R(i))
		}, func() {
			b.BinTo(sum, ir.OpSub, ir.R(sum), ir.R(i))
		})
	})
	b.Ret(ir.R(sum))
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(p, fn, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// odds 1+3+5+7+9 = 25; evens 0+2+4+6+8 = 20.
	if res.RetValue != 5 {
		t.Errorf("got %d, want 5", res.RetValue)
	}
}

func TestBusyHasILP(t *testing.T) {
	// Busy must form independent chains: its instruction count is n+O(1)
	// and it must not be a single serial dependence chain. We check
	// structurally: at least two distinct destination registers receive
	// updates.
	p := ir.NewProgram("busy")
	fn := p.NewFunction("main", 1)
	b := ir.NewBuilder(p, fn)
	r := Busy(b, ir.R(fn.Params[0]), 30)
	b.Ret(ir.R(r))
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	dsts := map[ir.Reg]int{}
	for _, blk := range fn.Blocks {
		for i := range blk.Instrs {
			if d := blk.Instrs[i].Def(); d != ir.NoReg {
				dsts[d]++
			}
		}
	}
	multi := 0
	for _, n := range dsts {
		if n > 3 {
			multi++
		}
	}
	if multi < 3 {
		t.Errorf("Busy should drive >=3 independent chains, found %d", multi)
	}
}

func TestWhileLoop(t *testing.T) {
	p := ir.NewProgram("while")
	fn := p.NewFunction("main", 1)
	b := ir.NewBuilder(p, fn)
	n := b.Mov(ir.R(fn.Params[0]))
	count := b.Const(0)
	While(b, "w", func() ir.Reg {
		return b.Bin(ir.OpCmpGT, ir.R(n), ir.C(0))
	}, func() {
		b.BinTo(n, ir.OpShr, ir.R(n), ir.C(1))
		b.BinTo(count, ir.OpAdd, ir.R(count), ir.C(1))
	})
	b.Ret(ir.R(count))
	res, err := interp.Run(p, fn, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetValue != 11 {
		t.Errorf("log2(1024)+1 = 11, got %d", res.RetValue)
	}
}
