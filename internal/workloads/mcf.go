package workloads

import "helixrc/internal/ir"

// Mcf builds the 181.mcf analogue: single-depot vehicle scheduling by
// network simplex.
//
// Modelled loops:
//   - pricing: the per-arc reduced-cost scan with a conditional update of
//     shared node potentials (a frequent, data-dependent loop-carried
//     memory dependence: mcf's dependence-waiting overhead in Figure 12)
//     and a best-arc max reduction.
//   - augment: a short pointer-chasing walk of the current basis path —
//     a while loop whose exit condition is genuinely loop-carried, so
//     HCCv3 compiles the control protocol (mcf's "many wait/signal
//     instructions").
//   - refresh: the basis-refresh pass over all arcs that HCCv1/v2 also
//     select (Table 1: 65.3%).
//
// Paper speedup: 8.7x.
func Mcf() *Workload {
	p := ir.NewProgram("181.mcf")
	tyArc := p.NewType("arc")
	tyPot := p.NewType("potential[]")
	tyRed := p.NewType("redcost[]")

	const (
		nArcs  = 1024
		nNodes = 48
	)
	// Arc nodes: {next, head, tail, cost} — a linked list laid out with a
	// stride so successive arcs are not adjacent in memory.
	arcs := p.AddGlobal("arcs", nArcs*4, tyArc)
	{
		r := newLCG(51)
		arcs.Init = make([]int64, nArcs*4)
		for i := int64(0); i < nArcs; i++ {
			next := int64(0)
			if i < 127 {
				// The basis path is short: 128 arcs linked with a stride.
				next = arcs.Addr + ((i*17+1)%nArcs)*4
			}
			arcs.Init[i*4+0] = next
			arcs.Init[i*4+1] = r.intn(nNodes)
			arcs.Init[i*4+2] = r.intn(nNodes)
			arcs.Init[i*4+3] = r.intn(1000)
		}
	}
	pot := p.AddGlobal("pot", nNodes, tyPot)
	fill(pot, 52, 500)
	red := p.AddGlobal("red", nArcs, tyRed)

	// pricing(n): scan arcs computing reduced costs.
	pricing := p.NewFunction("pricing", 1)
	{
		b := ir.NewBuilder(p, pricing)
		n := pricing.Params[0]
		ab := b.GlobalAddr(arcs)
		pb := b.GlobalAddr(pot)
		best := b.Const(0)
		rb := b.GlobalAddr(red)
		Loop(b, "pricing", ir.R(n), func(i ir.Reg) {
			abase := b.Mul(ir.R(i), ir.C(4))
			aa := b.Add(ir.R(ab), ir.R(abase))
			tail := b.Load(ir.R(aa), 2, ir.MemAttrs{Type: tyArc, Path: "arc.tail"})
			cost := b.Load(ir.R(aa), 3, ir.MemAttrs{Type: tyArc, Path: "arc.cost"})
			// Reduced cost: cached table entry plus the head node's
			// potential (read every iteration, written rarely — most
			// shared values are consumed by several cores, Figure 4c).
			ra := b.Add(ir.R(rb), ir.R(i))
			cached := b.Load(ir.R(ra), 0, ir.MemAttrs{Type: tyRed, Path: "red"})
			head := b.Load(ir.R(aa), 1, ir.MemAttrs{Type: tyArc, Path: "arc.head"})
			ha := b.Add(ir.R(pb), ir.R(head))
			hp := b.Load(ir.R(ha), 0, ir.MemAttrs{Type: tyPot, Path: "pot"})
			rc0 := b.Sub(ir.R(cost), ir.R(cached))
			rc1 := b.Add(ir.R(rc0), ir.R(hp))
			rc := b.Bin(ir.OpAnd, ir.R(rc1), ir.C(1023))
			// Violating arcs adjust the shared tail potential — the
			// frequent, data-dependent loop-carried dependence that makes
			// mcf a dependence-waiting benchmark in Figure 12.
			neg := b.Bin(ir.OpCmpLT, ir.R(rc), ir.C(180))
			If(b, ir.R(neg), func() {
				ta := b.Add(ir.R(pb), ir.R(tail))
				tp := b.Load(ir.R(ta), 0, ir.MemAttrs{Type: tyPot, Path: "pot"})
				adj := b.Add(ir.R(tp), ir.C(1))
				b.Store(ir.R(ta), 0, ir.R(adj), ir.MemAttrs{Type: tyPot, Path: "pot"})
			}, nil)
			b.BinTo(best, ir.OpMax, ir.R(best), ir.R(rc))
			w := Busy(b, ir.R(rc), 26)
			_ = w
		})
		b.Ret(ir.R(best))
	}

	// augment(): walk the basis path (pointer chase, control protocol).
	augment := p.NewFunction("augment", 0)
	{
		b := ir.NewBuilder(p, augment)
		arc := b.Const(arcs.Addr)
		flow := b.Const(0)
		While(b, "augment", func() ir.Reg {
			return b.Bin(ir.OpCmpNE, ir.R(arc), ir.C(0))
		}, func() {
			// Advance the chase first to keep the pointer segment short.
			cur := b.Mov(ir.R(arc))
			nxt := b.Load(ir.R(arc), 0, ir.MemAttrs{Type: tyArc, Path: "arc.next"})
			b.MovTo(arc, ir.R(nxt))
			cost := b.Load(ir.R(cur), 3, ir.MemAttrs{Type: tyArc, Path: "arc.cost"})
			b.BinTo(flow, ir.OpAdd, ir.R(flow), ir.R(cost))
			w := Busy(b, ir.R(cost), 32)
			_ = w
		})
		b.Ret(ir.R(flow))
	}

	// refresh(n): recompute stored reduced costs for all arcs — the pass
	// HCCv1/v2 also select, with two shared bookkeeping cells up front.
	tyRS := p.NewType("rstats")
	rstats := p.AddGlobal("rstats", 2, tyRS)
	refresh := p.NewFunction("refresh", 1)
	{
		b := ir.NewBuilder(p, refresh)
		n := refresh.Params[0]
		ab := b.GlobalAddr(arcs)
		rb := b.GlobalAddr(red)
		tb := b.GlobalAddr(rstats)
		Loop(b, "refresh", ir.R(n), func(i ir.Reg) {
			s0 := b.Load(ir.R(tb), 0, ir.MemAttrs{Type: tyRS, Path: "rstats.sum"})
			s1 := b.Add(ir.R(s0), ir.R(i))
			b.Store(ir.R(tb), 0, ir.R(s1), ir.MemAttrs{Type: tyRS, Path: "rstats.sum"})
			m0 := b.Load(ir.R(tb), 1, ir.MemAttrs{Type: tyRS, Path: "rstats.max"})
			m1 := b.Bin(ir.OpMax, ir.R(m0), ir.R(i))
			b.Store(ir.R(tb), 1, ir.R(m1), ir.MemAttrs{Type: tyRS, Path: "rstats.max"})
			abase := b.Mul(ir.R(i), ir.C(4))
			aa := b.Add(ir.R(ab), ir.R(abase))
			cost := b.Load(ir.R(aa), 3, ir.MemAttrs{Type: tyArc, Path: "arc.cost"})
			w := Busy(b, ir.R(cost), 95)
			ra := b.Add(ir.R(rb), ir.R(i))
			b.Store(ir.R(ra), 0, ir.R(w), ir.MemAttrs{Type: tyRed, Path: "red"})
		})
		b.RetVoid()
	}

	// main(iters): simplex iterations: price, refresh, then augment.
	main := p.NewFunction("main", 1)
	{
		b := ir.NewBuilder(p, main)
		iters := main.Params[0]
		acc := b.Const(0)
		Loop(b, "simplex", ir.R(iters), func(it ir.Reg) {
			v := b.Call(pricing, ir.C(nArcs))
			b.BinTo(acc, ir.OpAdd, ir.R(acc), ir.R(v))
			b.Call(refresh, ir.C(nArcs))
			f := b.Call(augment)
			b.BinTo(acc, ir.OpXor, ir.R(acc), ir.R(f))
		})
		pb := b.GlobalAddr(pot)
		Loop(b, "sum", ir.C(nNodes), func(i ir.Reg) {
			pa := b.Add(ir.R(pb), ir.R(i))
			v := b.Load(ir.R(pa), 0, ir.MemAttrs{Type: tyPot, Path: "pot"})
			b.BinTo(acc, ir.OpAdd, ir.R(acc), ir.R(v))
		})
		b.Ret(ir.R(acc))
	}

	return &Workload{
		Name: "181.mcf", Class: INT,
		Prog: p, Entry: main,
		TrainArgs:     []int64{2},
		RefArgs:       []int64{8},
		Phases:        19,
		PaperSpeedup:  8.7,
		PaperCoverage: [4]float64{0, 0.653, 0.653, 0.99},
	}
}
