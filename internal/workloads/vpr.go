package workloads

import "helixrc/internal/ir"

// Vpr builds the 175.vpr analogue: FPGA placement by simulated annealing.
//
// Modelled loop: the per-net bounding-box cost evaluation triggered by
// every move — the paper's Figure 5 example comes from this benchmark
// (55% of its runtime). Iterations are short, the trip count per
// invocation is low (the nets touched by one move, 8-20), and a
// conditional path updates the shared cost cell. Low trip count dominates
// vpr's overhead in Figure 12; paper speedup 6.1x.
func Vpr() *Workload {
	p := ir.NewProgram("175.vpr")
	tyPin := p.NewType("pins[]")
	tyNet := p.NewType("nets[]")
	tyCost := p.NewType("cost")

	const (
		nNets   = 512
		pinsPer = 4
	)
	pins := p.AddGlobal("pins", nNets*pinsPer*2, tyPin)
	fill(pins, 21, 1024)
	nets := p.AddGlobal("nets", nNets, tyNet)
	fill(nets, 22, nNets)
	cost := p.AddGlobal("cost", 1, tyCost)
	cost.Init = []int64{1000}

	// evalMove(move, count): re-evaluate `count` nets affected by a move.
	evalMove := p.NewFunction("evalMove", 2)
	{
		b := ir.NewBuilder(p, evalMove)
		move := evalMove.Params[0]
		count := evalMove.Params[1]
		pb := b.GlobalAddr(pins)
		nb := b.GlobalAddr(nets)
		cb := b.GlobalAddr(cost)
		Loop(b, "nets", ir.R(count), func(n ir.Reg) {
			// Which net: data-dependent via the move's affected list.
			mi := b.Add(ir.R(move), ir.R(n))
			mm := b.Bin(ir.OpAnd, ir.R(mi), ir.C(nNets-1))
			na := b.Add(ir.R(nb), ir.R(mm))
			net := b.Load(ir.R(na), 0, ir.MemAttrs{Type: tyNet, Path: "net"})
			netM := b.Bin(ir.OpAnd, ir.R(net), ir.C(nNets-1))
			pbase := b.Mul(ir.R(netM), ir.C(pinsPer*2))
			pa := b.Add(ir.R(pb), ir.R(pbase))
			// Bounding box over the net's pins (private math).
			minx := b.Const(1 << 20)
			maxx := b.Const(0)
			miny := b.Const(1 << 20)
			maxy := b.Const(0)
			for k := int64(0); k < pinsPer; k++ {
				x := b.Load(ir.R(pa), k*2, ir.MemAttrs{Type: tyPin, Path: "pin.x"})
				y := b.Load(ir.R(pa), k*2+1, ir.MemAttrs{Type: tyPin, Path: "pin.y"})
				b.BinTo(minx, ir.OpMin, ir.R(minx), ir.R(x))
				b.BinTo(maxx, ir.OpMax, ir.R(maxx), ir.R(x))
				b.BinTo(miny, ir.OpMin, ir.R(miny), ir.R(y))
				b.BinTo(maxy, ir.OpMax, ir.R(maxy), ir.R(y))
			}
			dx := b.Sub(ir.R(maxx), ir.R(minx))
			dy := b.Sub(ir.R(maxy), ir.R(miny))
			bb0 := b.Add(ir.R(dx), ir.R(dy))
			crossing := Busy(b, ir.R(bb0), 18)
			bbox := b.Add(ir.R(bb0), ir.R(crossing))
			// Only nets whose bbox changed update the shared cost — the
			// Figure 5 conditional sequential segment.
			odd := b.Bin(ir.OpAnd, ir.R(net), ir.C(1))
			If(b, ir.R(odd), func() {
				cv := b.Load(ir.R(cb), 0, ir.MemAttrs{Type: tyCost, Path: "cost"})
				nc := b.Add(ir.R(cv), ir.R(bbox))
				wrapped := b.Bin(ir.OpAnd, ir.R(nc), ir.C((1<<30)-1))
				b.Store(ir.R(cb), 0, ir.R(wrapped), ir.MemAttrs{Type: tyCost, Path: "cost"})
			}, nil)
		})
		b.RetVoid()
	}

	// timing(n): slack recomputation over all nets — the long-iteration
	// DOALL loop HCCv1/v2 can also select (Table 1: 55.1% coverage).
	tySlack := p.NewType("slack[]")
	slack := p.AddGlobal("slack", nNets, tySlack)
	tyTS := p.NewType("tstats")
	tstats := p.AddGlobal("tstats", 2, tyTS)
	timing := p.NewFunction("timing", 1)
	{
		b := ir.NewBuilder(p, timing)
		n := timing.Params[0]
		pb := b.GlobalAddr(pins)
		sb := b.GlobalAddr(slack)
		tb := b.GlobalAddr(tstats)
		Loop(b, "timing", ir.R(n), func(net ir.Reg) {
			// Critical-path bookkeeping cells (shared, updated up front).
			c0 := b.Load(ir.R(tb), 0, ir.MemAttrs{Type: tyTS, Path: "tstats.sum"})
			c1 := b.Add(ir.R(c0), ir.R(net))
			b.Store(ir.R(tb), 0, ir.R(c1), ir.MemAttrs{Type: tyTS, Path: "tstats.sum"})
			d0 := b.Load(ir.R(tb), 1, ir.MemAttrs{Type: tyTS, Path: "tstats.max"})
			d1 := b.Bin(ir.OpMax, ir.R(d0), ir.R(net))
			b.Store(ir.R(tb), 1, ir.R(d1), ir.MemAttrs{Type: tyTS, Path: "tstats.max"})
			pbase := b.Mul(ir.R(net), ir.C(pinsPer*2))
			pa := b.Add(ir.R(pb), ir.R(pbase))
			x := b.Load(ir.R(pa), 0, ir.MemAttrs{Type: tyPin, Path: "pin.x"})
			y := b.Load(ir.R(pa), 1, ir.MemAttrs{Type: tyPin, Path: "pin.y"})
			d := b.Add(ir.R(x), ir.R(y))
			w := Busy(b, ir.R(d), 70)
			sa := b.Add(ir.R(sb), ir.R(net))
			b.Store(ir.R(sa), 0, ir.R(w), ir.MemAttrs{Type: tySlack, Path: "slack"})
		})
		b.RetVoid()
	}

	// main(moves, netsPerMove): anneal; re-run timing every 32 moves.
	main := p.NewFunction("main", 2)
	{
		b := ir.NewBuilder(p, main)
		moves := main.Params[0]
		perMove := main.Params[1]
		Loop(b, "moves", ir.R(moves), func(m ir.Reg) {
			b.Call(evalMove, ir.R(m), ir.R(perMove))
			low := b.Bin(ir.OpAnd, ir.R(m), ir.C(31))
			isZero := b.Bin(ir.OpCmpEQ, ir.R(low), ir.C(0))
			If(b, ir.R(isZero), func() {
				b.Call(timing, ir.C(nNets))
			}, nil)
		})
		cb := b.GlobalAddr(cost)
		v := b.Load(ir.R(cb), 0, ir.MemAttrs{Type: tyCost, Path: "cost"})
		b.Ret(ir.R(v))
	}

	return &Workload{
		Name: "175.vpr", Class: INT,
		Prog: p, Entry: main,
		TrainArgs:     []int64{40, 10},
		RefArgs:       []int64{320, 10},
		Phases:        28,
		PaperSpeedup:  6.1,
		PaperCoverage: [4]float64{0, 0.551, 0.551, 0.99},
	}
}
