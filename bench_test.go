// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Section 6). Each benchmark runs its experiment end to end —
// compile with the appropriate HCC generation, simulate, aggregate — and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. EXPERIMENTS.md records the
// paper-vs-measured comparison for every row.
package helixrc_test

import (
	"context"
	"testing"

	"helixrc/internal/harness"
)

// BenchmarkFigure1 regenerates Figure 1: HCCv1 vs HCCv2 on conventional
// hardware (paper shape: FP 2.4x -> 11x, INT flat ~2x).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure1(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean[0], "geomean-v1")
		b.ReportMetric(f.Geomean[1], "geomean-v2")
	}
}

// BenchmarkFigure2 regenerates Figure 2: dependence-analysis accuracy per
// alias tier (paper shape: 48% -> 81%).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.Geomean[0], "pct-vllpa")
		b.ReportMetric(100*f.Geomean[len(f.Geomean)-1], "pct-libcalls")
	}
}

// BenchmarkFigure3 regenerates Figure 3: predictability removes register
// communication (paper shape: 15% of register communication remains).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Figure3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.RegCommFraction, "pct-reg-remaining")
		b.ReportMetric(100*r.MemShare, "pct-mem-share")
	}
}

// BenchmarkFigure4 regenerates Figure 4: iteration lengths, hop distances
// and consumer counts of the small hot loops.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Figure4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.IterCyclesCDF[4], "pct-iters-le-110cyc")
		b.ReportMetric(100*r.HopDist[1], "pct-1hop")
	}
}

// BenchmarkTable1 regenerates Table 1: parallelized-loop coverage per
// compiler generation.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		var v2, v3 float64
		for _, r := range rows[:6] {
			v2 += r.Coverage[1] / 6
			v3 += r.Coverage[2] / 6
		}
		b.ReportMetric(100*v2, "pct-int-cov-v2")
		b.ReportMetric(100*v3, "pct-int-cov-v3")
	}
}

// BenchmarkFigure7 regenerates the headline Figure 7: HCCv2 vs HELIX-RC
// (paper shape: INT 2.2x -> 6.85x; FP 11.4x -> ~12x).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure7(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		var intV2, intRC, fpRC []float64
		for _, r := range f.Rows[:6] {
			intV2 = append(intV2, r.Values[0])
			intRC = append(intRC, r.Values[1])
		}
		for _, r := range f.Rows[6:] {
			fpRC = append(fpRC, r.Values[1])
		}
		b.ReportMetric(harness.Geomean(intV2), "x-int-hccv2")
		b.ReportMetric(harness.Geomean(intRC), "x-int-helixrc")
		b.ReportMetric(harness.Geomean(fpRC), "x-fp-helixrc")
	}
}

// BenchmarkFigure8 regenerates Figure 8: the decoupling breakdown.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure8(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean[0], "x-hccv2")
		b.ReportMetric(f.Geomean[1], "x-dec-reg")
		b.ReportMetric(f.Geomean[2], "x-dec-reg-sync")
		b.ReportMetric(f.Geomean[3], "x-dec-reg-mem")
		b.ReportMetric(f.Geomean[4], "x-helixrc")
	}
}

// BenchmarkFigure9 regenerates Figure 9: HCCv3 code on conventional vs
// ring-cache hardware.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure9(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		var c, r float64
		for _, row := range f.Rows {
			c += row.Values[0] / float64(len(f.Rows))
			r += row.Values[1] / float64(len(f.Rows))
		}
		b.ReportMetric(c, "pct-time-conventional")
		b.ReportMetric(r, "pct-time-ringcache")
	}
}

// BenchmarkFigure10 regenerates Figure 10: speedups by core type.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := harness.Figure10(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean[0], "x-2way-io")
		b.ReportMetric(f.Geomean[1], "x-2way-ooo")
		b.ReportMetric(f.Geomean[2], "x-4way-ooo")
	}
}

// BenchmarkFigure11 regenerates all four Figure 11 sensitivity panels.
func BenchmarkFigure11(b *testing.B) {
	panels := []struct{ name, which, first, last string }{
		{"CoreCount", "cores", "x-2cores", "x-16cores"},
		{"LinkLatency", "link", "x-1cycle", "x-32cycle"},
		{"SignalBandwidth", "signals", "x-unbounded", "x-1signal"},
		{"NodeMemory", "memory", "x-unbounded", "x-256B"},
	}
	for _, p := range panels {
		p := p
		b.Run(p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := harness.Figure11(context.Background(), p.which)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(f.Geomean[0], p.first)
				b.ReportMetric(f.Geomean[len(f.Geomean)-1], p.last)
			}
		})
	}
}

// BenchmarkFigure12 regenerates Figure 12: the overhead taxonomy.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure12(context.Background(), 16)
		if err != nil {
			b.Fatal(err)
		}
		var sp []float64
		for _, r := range rows {
			sp = append(sp, r.Speedup)
		}
		b.ReportMetric(harness.Geomean(sp), "x-geomean")
	}
}

// BenchmarkTLP regenerates the Section 6.2 TLP statistic (paper shape:
// TLP 6.4 -> 14.2; instructions per segment 8.5 -> 3.2).
func BenchmarkTLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.TLP(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ConservativeTLP, "tlp-conservative")
		b.ReportMetric(r.AggressiveTLP, "tlp-aggressive")
		b.ReportMetric(r.ConservativeSeg, "instr-per-seg-conservative")
		b.ReportMetric(r.AggressiveSeg, "instr-per-seg-aggressive")
	}
}
