package helixrc_test

import (
	"testing"

	"helixrc"
)

// TestPublicAPIRoundTrip builds a program against the public facade,
// compiles it, and verifies the parallel run matches both the interpreter
// and the sequential simulation.
func TestPublicAPIRoundTrip(t *testing.T) {
	p := helixrc.NewProgram("api")
	ty := p.NewType("data")
	arr := p.AddGlobal("arr", 512, ty)
	for i := int64(0); i < 512; i++ {
		arr.Init = append(arr.Init, i%37)
	}
	acc := p.AddGlobal("acc", 1, ty)

	f := p.NewFunction("main", 1)
	b := helixrc.NewBuilder(p, f)
	n := f.Params[0]
	ab := b.GlobalAddr(arr)
	cb := b.GlobalAddr(acc)
	i := b.Const(0)
	head := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(head)
	b.SetBlock(head)
	c := b.Bin(helixrc.OpCmpLT, helixrc.R(i), helixrc.R(n))
	b.CondBr(helixrc.R(c), body, exit)
	b.SetBlock(body)
	da := b.Add(helixrc.R(ab), helixrc.R(i))
	v := b.Load(helixrc.R(da), 0, helixrc.MemAttrs{Type: ty, Path: "arr"})
	cv := b.Load(helixrc.R(cb), 0, helixrc.MemAttrs{Type: ty, Path: "acc"})
	nv := b.Bin(helixrc.OpXor, helixrc.R(cv), helixrc.R(v))
	b.Store(helixrc.R(cb), 0, helixrc.R(nv), helixrc.MemAttrs{Type: ty, Path: "acc"})
	b.BinTo(i, helixrc.OpAdd, helixrc.R(i), helixrc.C(1))
	b.Br(head)
	b.SetBlock(exit)
	fv := b.Load(helixrc.R(cb), 0, helixrc.MemAttrs{Type: ty, Path: "acc"})
	b.Ret(helixrc.R(fv))
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}

	want, err := helixrc.Interpret(p, f, 512)
	if err != nil {
		t.Fatal(err)
	}

	comp, err := helixrc.Compile(p, f, helixrc.Options{
		Level: helixrc.V3, Cores: 8, TrainArgs: []int64{512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Loops) == 0 {
		t.Fatal("hot loop not selected")
	}

	seq, err := helixrc.Simulate(p, nil, f, helixrc.Conventional(8), 512)
	if err != nil {
		t.Fatal(err)
	}
	par, err := helixrc.Simulate(p, comp, f, helixrc.HelixRC(8), 512)
	if err != nil {
		t.Fatal(err)
	}
	if seq.RetValue != want || par.RetValue != want {
		t.Fatalf("results diverge: interp=%d seq=%d par=%d", want, seq.RetValue, par.RetValue)
	}
	if helixrc.Speedup(seq, par) <= 1 {
		t.Errorf("expected a speedup, got %.2f", helixrc.Speedup(seq, par))
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := helixrc.Workloads()
	if len(names) != 10 {
		t.Fatalf("suite has %d workloads, want 10", len(names))
	}
	for _, n := range names {
		w, err := helixrc.LoadWorkload(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != n {
			t.Errorf("name mismatch: %s vs %s", w.Name, n)
		}
	}
	if _, err := helixrc.LoadWorkload("nope"); err == nil {
		t.Error("unknown workload must error")
	}
}
