// helix-explore sweeps the HELIX-RC design space over the generated
// workload families (internal/scenarios): ring link latency × signal
// buffer depth × core count × alias tier, per family, rendering a
// speedup heatmap and a cost/speedup frontier table for each.
//
// Usage:
//
//	helix-explore                         # all families, default grid
//	helix-explore -family pointer-chase   # one family
//	helix-explore -cores 2,4 -links 1,32  # reshape the grid
//	helix-explore -json                   # append a report to EXPLORE_<date>.json
//	helix-explore -verify FILE            # compare output hashes against a report
//	helix-explore -workers 4              # shard the sweep over 4 processes
//	helix-explore -emitpack               # regenerate scenarios/*.json and exit
//
// Every (family, scenario) pair is recorded exactly once per (cores,
// tier) trace identity; the (link, signals) lanes of the grid are pure
// timing and are served by one batched trace replay per recording
// (sim.ReplayBatch). A 36-point grid over two scenarios therefore costs
// twelve recordings plus two baselines, not 72 simulations — which is
// what makes grid reshaping cheap enough to iterate on.
//
// The sweep runs on the same cached, sharded machinery as helix-bench:
// -cachedir persists recordings across runs, and -workers N forks N
// claim-coordinated workers whose merged report is byte-identical to a
// solo run. Scenario packs are loaded from -pack (default scenarios/ in
// the working directory); -emitpack regenerates the default packs after
// a deliberate generator change.
package main

import (
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"helixrc/internal/artifact"
	"helixrc/internal/benchreport"
	"helixrc/internal/cliutil"
	"helixrc/internal/harness"
	"helixrc/internal/hcc"
	"helixrc/internal/irgen"
	"helixrc/internal/scenarios"
)

// options collects the parsed flags so the three run modes (solo,
// worker, parent) share one configuration surface.
type options struct {
	family      string
	packDir     string
	level       int
	coresList   string
	tiersList   string
	linksList   string
	signalsList string
	parallel    int
	workers     int
	shard       string
	runid       string
	lease       time.Duration
	jsonOut     bool
	jsonFile    string
	cacheBudget int64
	verify      string
	label       string
	timeout     time.Duration
	quiet       bool
	cacheDir    string
	cacheClear  bool
	emitPack    bool

	grid []harness.SweepConfig // derived from the four axis lists
}

func main() {
	var o options
	flag.StringVar(&o.family, "family", "", "comma-separated family filter (default: every checked-in pack)")
	flag.StringVar(&o.packDir, "pack", "scenarios", "directory of scenario packs (*.json)")
	flag.IntVar(&o.level, "level", 3, "HCC compilation level for the parallel runs (1..3)")
	flag.StringVar(&o.coresList, "cores", "2,4,8", "core counts to sweep (comma-separated)")
	flag.StringVar(&o.tiersList, "tiers", "1,5", "alias tiers to sweep, 1-based alias.Tiers indices (comma-separated)")
	flag.StringVar(&o.linksList, "links", "1,8,32", "ring link latencies in cycles to sweep (comma-separated)")
	flag.StringVar(&o.signalsList, "signals", "0,1", "signal buffer depths to sweep, 0 = unbounded (comma-separated)")
	flag.IntVar(&o.parallel, "parallel", 0, "sweep-cell worker count (0 = all CPUs, 1 = sequential)")
	flag.IntVar(&o.workers, "workers", 0, "shard the sweep over N worker processes sharing the cache dir (0 = this process only)")
	flag.StringVar(&o.shard, "shard", "", "run as worker i of n (\"i/n\") against a shared -cachedir; requires -runid and -jsonfile")
	flag.StringVar(&o.runid, "runid", "", "work-claiming scope for -shard workers; pick a fresh value per sweep")
	flag.DurationVar(&o.lease, "lease", time.Minute, "work-claim lease: a crashed worker's claims become stealable after this long")
	flag.BoolVar(&o.jsonOut, "json", false, "append a machine-readable report to EXPLORE_<date>.json")
	flag.StringVar(&o.jsonFile, "jsonfile", "", "append the machine-readable report to this file instead of EXPLORE_<date>.json (implies -json)")
	flag.Int64Var(&o.cacheBudget, "cachebudget", harness.DefaultCacheBudget>>20, "harness memo-cache byte budget in MB (0 = unbounded)")
	flag.StringVar(&o.verify, "verify", "", "EXPLORE_*.json file to verify output hashes against (exit 1 on mismatch)")
	flag.StringVar(&o.label, "label", "", "free-form label recorded in the JSON report")
	flag.DurationVar(&o.timeout, "timeout", 0, "bound the whole run's wall clock (0 = none)")
	flag.BoolVar(&o.quiet, "quiet", false, "silence engine diagnostics (cache evictions)")
	flag.StringVar(&o.cacheDir, "cachedir", "", "disk tier for recorded traces and baseline results; a warm run re-times them without re-simulating")
	flag.BoolVar(&o.cacheClear, "cacheclear", false, "wipe the -cachedir disk tier before running")
	flag.BoolVar(&o.emitPack, "emitpack", false, "regenerate the default scenario packs into -pack and exit")
	flag.Parse()

	if o.emitPack {
		os.Exit(emitPacks(o.packDir))
	}
	if err := cliutil.CheckLevel(o.level); err != nil {
		log.Fatal(err)
	}
	grid, err := buildGrid(o.coresList, o.tiersList, o.linksList, o.signalsList)
	if err != nil {
		log.Fatal(err)
	}
	o.grid = grid
	if o.workers < 0 {
		log.Fatalf("-workers %d: accepted range is 0..", o.workers)
	}
	if o.workers > 0 && o.shard != "" {
		log.Fatal("-workers and -shard are mutually exclusive (the parent forks the shards itself)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	if o.workers > 0 {
		os.Exit(runParent(ctx, &o))
	}
	os.Exit(runLocal(ctx, &o))
}

// emitPacks regenerates the canonical pack of every family. This is the
// only sanctioned way to update scenarios/*.json: a deliberate knob or
// generator change re-emits, and the round-trip tests hold everything
// else to the checked-in fingerprints.
func emitPacks(dir string) int {
	var packs []scenarios.Pack
	for _, f := range irgen.Families() {
		p, err := scenarios.DefaultPack(f)
		if err != nil {
			log.Printf("building %s pack: %v", f, err)
			return 1
		}
		packs = append(packs, p)
	}
	if err := scenarios.WriteDir(dir, packs); err != nil {
		log.Print(err)
		return 1
	}
	for _, p := range packs {
		fmt.Printf("wrote %s (%d scenarios)\n", filepath.Join(dir, p.Family+".json"), len(p.Scenarios))
	}
	return 0
}

// parseAxis parses one comma-separated sweep axis, rejecting
// duplicates (a duplicated coordinate would double-count grid cells).
func parseAxis(flagName, s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-%s: empty axis", flagName)
	}
	var vals []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-%s %q: %v", flagName, s, err)
		}
		if seen[v] {
			return nil, fmt.Errorf("-%s %q: duplicate value %d", flagName, s, v)
		}
		seen[v] = true
		vals = append(vals, v)
	}
	return vals, nil
}

// buildGrid materializes the sweep grid in canonical order — cores
// outermost, then tier, link, signals — which fixes cell order in the
// rendered heatmaps and the JSON report. Every point is validated here
// so a bad axis fails before any simulation.
func buildGrid(cores, tiers, links, signals string) ([]harness.SweepConfig, error) {
	cs, err := parseAxis("cores", cores)
	if err != nil {
		return nil, err
	}
	ts, err := parseAxis("tiers", tiers)
	if err != nil {
		return nil, err
	}
	ls, err := parseAxis("links", links)
	if err != nil {
		return nil, err
	}
	ss, err := parseAxis("signals", signals)
	if err != nil {
		return nil, err
	}
	var grid []harness.SweepConfig
	for _, c := range cs {
		for _, t := range ts {
			for _, l := range ls {
				for _, s := range ss {
					cfg := harness.SweepConfig{Cores: c, Tier: t, Link: l, Signals: s}
					if err := cfg.Validate(); err != nil {
						return nil, err
					}
					grid = append(grid, cfg)
				}
			}
		}
	}
	return grid, nil
}

// familyRun is one family's share of the sweep: the registry names of
// its scenarios, in pack order.
type familyRun struct {
	family    string
	scenarios []string
}

// selectFamilies loads the packs and applies the -family filter. The
// result is sorted by family name, which is the canonical experiment
// order a merged sharded report must reassemble.
func selectFamilies(o *options) ([]scenarios.Pack, []familyRun, error) {
	packs, err := scenarios.LoadDir(o.packDir)
	if err != nil {
		return nil, nil, err
	}
	want := map[string]bool{}
	if o.family != "" {
		for _, part := range strings.Split(o.family, ",") {
			f, err := irgen.ParseFamily(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, err
			}
			want[string(f)] = true
		}
	}
	var runs []familyRun
	for _, p := range packs {
		if o.family != "" && !want[p.Family] {
			continue
		}
		delete(want, p.Family)
		fr := familyRun{family: p.Family}
		for _, m := range p.Scenarios {
			fr.scenarios = append(fr.scenarios, m.Name)
		}
		runs = append(runs, fr)
	}
	if len(want) > 0 {
		var missing []string
		for f := range want {
			missing = append(missing, f)
		}
		sort.Strings(missing)
		return nil, nil, fmt.Errorf("no pack in %s for family %s", o.packDir, strings.Join(missing, ", "))
	}
	if len(runs) == 0 {
		return nil, nil, fmt.Errorf("no families selected from %s", o.packDir)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].family < runs[j].family })
	return packs, runs, nil
}

// experimentName is the report name of one family's sweep.
func experimentName(family string) string { return "explore:" + family }

func experimentOrder(runs []familyRun) []string {
	names := make([]string, len(runs))
	for i, fr := range runs {
		names[i] = experimentName(fr.family)
	}
	return names
}

// runLocal executes the sweep in this process: the default solo mode,
// or one -shard worker of a sharded sweep.
func runLocal(ctx context.Context, o *options) int {
	harness.SetParallelism(o.parallel)
	harness.SetCacheBudget(o.cacheBudget << 20)
	if o.quiet {
		harness.SetQuiet()
	}
	if err := cliutil.SetupCacheDir(o.cacheDir, o.cacheClear); err != nil {
		log.Fatal(err)
	}

	packs, runs, err := selectFamilies(o)
	if err != nil {
		log.Fatal(err)
	}
	// Register every loaded pack (not just the selected families): the
	// registry is content-validated either way, and registration order
	// then matches across workers regardless of their -family split.
	for _, p := range packs {
		if err := scenarios.RegisterPack(p); err != nil {
			log.Fatal(err)
		}
	}

	var claimer *artifact.Claimer
	if o.shard != "" {
		if _, _, err := parseShard(o.shard); err != nil {
			log.Fatal(err)
		}
		if o.cacheDir == "" || o.runid == "" {
			log.Fatal("-shard requires -cachedir (the shared store workers coordinate through) and -runid (a value all workers of this sweep share, fresh per sweep)")
		}
		if o.jsonFile == "" {
			log.Fatal("-shard requires -jsonfile for this worker's partial report")
		}
		claimer = artifact.NewClaimer(
			filepath.Join(o.cacheDir, "claims", o.runid),
			fmt.Sprintf("shard %s pid%d", o.shard, os.Getpid()),
			o.lease)
	}

	var wantSHA map[string]string
	if o.verify != "" {
		if wantSHA, err = benchreport.ExpectedHashes(o.verify); err != nil {
			log.Fatalf("loading %s: %v", o.verify, err)
		}
	}

	var names []string
	for _, fr := range runs {
		names = append(names, fr.scenarios...)
	}
	level := hcc.Level(o.level)
	start := time.Now()

	// Phase A: warm the store. Sharded, the content-keyed unit plan is
	// identical on every worker and the claim files partition the
	// recordings; solo, the prefetch batches every timing lane of a
	// recording into one trace traversal. Either way each (scenario,
	// cores, tier) is recorded exactly once.
	if claimer != nil {
		units, err := harness.PlanSweep(ctx, names, level, o.grid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shard %s: planning sweep units: %v (continuing uncoordinated)\n", o.shard, err)
		} else {
			harness.RunPlan(ctx, units, claimer)
		}
	} else {
		harness.PrefetchSweep(ctx, names, level, o.grid)
	}

	reports, fams, mismatches, interrupted, runErr := runFamilies(ctx, o, runs, claimer, wantSHA)
	total := time.Since(start)

	if o.jsonOut || o.jsonFile != "" {
		if err := appendLocalReport(o, claimer, reports, fams, total, interrupted, runErr); err != nil {
			log.Fatalf("writing explore report: %v", err)
		}
	}

	if runErr != nil {
		log.Printf("%v", runErr)
		return 1
	}
	if interrupted {
		log.Printf("interrupted after %.1fs with %d famil(ies) complete", total.Seconds(), len(reports))
		return 1
	}
	if mismatches > 0 {
		log.Printf("verify: %d famil(ies) diverge from %s", mismatches, o.verify)
		return 1
	}
	if o.shard == "" {
		fmt.Println(strings.Repeat("=", 60))
		fmt.Printf("Sweep complete in %.1fs: %d families × %d design points.\n",
			total.Seconds(), len(runs), len(o.grid))
	}
	return 0
}

// runFamilies drives the per-family sweeps. Without a claimer they run
// in order, stopping at the first failure. With one, families are
// claimed whole through the shared claim directory, exactly like
// helix-bench's experiments: render what we win, skip what another
// worker finished, poll what is still held.
func runFamilies(ctx context.Context, o *options, runs []familyRun, claimer *artifact.Claimer, wantSHA map[string]string) (reports []benchreport.Experiment, fams []benchreport.ExploreFamily, mismatches int, interrupted bool, runErr error) {
	if claimer == nil {
		for _, fr := range runs {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			rep, fam, err := runOne(ctx, o, fr, wantSHA, &mismatches)
			if err != nil {
				if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					interrupted = true
					break
				}
				runErr = err
				break
			}
			reports = append(reports, rep)
			fams = append(fams, fam)
		}
		return
	}

	done := make(map[string]bool, len(runs))
	for len(done) < len(runs) {
		if ctx.Err() != nil {
			interrupted = true
			return
		}
		progress := false
		for _, fr := range runs {
			if done[fr.family] || ctx.Err() != nil {
				continue
			}
			lease, st, err := claimer.Acquire(harness.ExperimentClaimKey(experimentName(fr.family), 0))
			if err != nil {
				// Claim dir unusable: run it ourselves. Worst case is a
				// duplicated family, which the merge accepts as long as the
				// outputs agree (and they do — byte-identical).
				lease, st = nil, artifact.ClaimAcquired
			}
			switch st {
			case artifact.ClaimAcquired:
				rep, fam, err := runOne(ctx, o, fr, wantSHA, &mismatches)
				if err != nil {
					if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						if lease != nil {
							lease.Release() // let a surviving worker rerun it
						}
						interrupted = true
						return
					}
					if lease != nil {
						lease.Done("error: " + err.Error())
					}
					runErr = errors.Join(runErr, err)
				} else {
					if lease != nil {
						lease.Done(rep.OutputSHA256)
					}
					reports = append(reports, rep)
					fams = append(fams, fam)
				}
				done[fr.family] = true
				progress = true
			case artifact.ClaimDone:
				done[fr.family] = true
				progress = true
			case artifact.ClaimHeld:
				// revisit next pass
			}
		}
		if !progress {
			select {
			case <-ctx.Done():
				interrupted = true
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	return
}

// runOne sweeps one family: every (scenario × grid point) cell, the
// geomean across scenarios per point, the frontier, and the rendered
// text the report hashes. After the phase-A warm-up the cells are pure
// cache reads, so ParMap here costs memory lookups, not simulation.
func runOne(ctx context.Context, o *options, fr familyRun, wantSHA map[string]string, mismatches *int) (benchreport.Experiment, benchreport.ExploreFamily, error) {
	expStart := time.Now()
	level := hcc.Level(o.level)
	ns := len(fr.scenarios)
	// Cell i is (grid point i/ns, scenario i%ns), so the slice below
	// recovers each point's per-scenario speedups contiguously.
	speedups, err := harness.ParMap(ctx, len(o.grid)*ns, func(ctx context.Context, i int) (float64, error) {
		return harness.SweepCell(ctx, fr.scenarios[i%ns], level, o.grid[i/ns])
	})
	if err != nil {
		return benchreport.Experiment{}, benchreport.ExploreFamily{}, fmt.Errorf("%s: %w", experimentName(fr.family), err)
	}
	cells := make([]benchreport.ExploreConfig, len(o.grid))
	for ci, cfg := range o.grid {
		per := speedups[ci*ns : (ci+1)*ns]
		cells[ci] = benchreport.ExploreConfig{
			Cores:   cfg.Cores,
			Tier:    cfg.Tier,
			Link:    cfg.Link,
			Signals: cfg.Signals,
			Speedup: harness.Geomean(per),
			Cost:    benchreport.ExploreCost(cfg.Cores, cfg.Link, cfg.Signals),
		}
	}
	fam := benchreport.ExploreFamily{
		Family:    fr.family,
		Scenarios: append([]string(nil), fr.scenarios...),
		Cells:     cells,
		Frontier:  benchreport.ComputeFrontier(cells),
	}
	out := fam.Format()
	wall := time.Since(expStart)
	name := experimentName(fr.family)
	fmt.Printf("==== %s ====\n%s\n", name, out)
	sha := fmt.Sprintf("%x", sha256.Sum256([]byte(out)))
	verifyOne(name, sha, wantSHA, o.verify, mismatches)
	return benchreport.Experiment{
		Name:         name,
		WallMillis:   float64(wall.Microseconds()) / 1e3,
		OutputSHA256: sha,
		Output:       out,
	}, fam, nil
}

func verifyOne(name, sha string, wantSHA map[string]string, verifyPath string, mismatches *int) {
	if wantSHA == nil {
		return
	}
	switch want, ok := wantSHA[name]; {
	case !ok:
		fmt.Printf("verify %s: no reference hash in %s (skipped)\n", name, verifyPath)
	case want != sha:
		fmt.Printf("verify %s: MISMATCH (want %s, got %s)\n", name, want[:12], sha[:12])
		*mismatches++
	default:
		fmt.Printf("verify %s: ok\n", name)
	}
}

// replaySection assembles the replay/caching counters of this process,
// including the work-claiming counters when sharded.
func replaySection(claimer *artifact.Claimer) *benchreport.Replay {
	recordings, replays := harness.ReplayStats()
	batches, batchConfigs, batchFallbacks := harness.BatchStats()
	cs := harness.CacheStats()
	if claimer != nil {
		cs.Add(claimer.Stats())
	}
	return &benchreport.Replay{
		Recordings:     recordings,
		Replays:        replays,
		Batches:        batches,
		BatchConfigs:   batchConfigs,
		BatchFallbacks: batchFallbacks,
		Claims:         cs.Claims,
		Steals:         cs.Steals,
		ExpiredLeases:  cs.ExpiredLeases,
		DupSuppressed:  cs.DupSuppressed,
		MemHits:        cs.MemHits,
		MemMisses:      cs.MemMisses,
		DiskHits:       cs.DiskHits,
		DiskMisses:     cs.DiskMisses,
		DiskWrites:     cs.DiskWrites,
		DiskLoadMS:     float64(cs.DiskLoadNS) / 1e6,
		CacheEvictions: cs.Evictions,
		CacheEvictedMB: float64(cs.EvictedBytes) / (1 << 20),
	}
}

// appendLocalReport writes this process's (solo or partial) report,
// including the Explore section the merge unions across workers.
func appendLocalReport(o *options, claimer *artifact.Claimer, reports []benchreport.Experiment, fams []benchreport.ExploreFamily, total time.Duration, interrupted bool, runErr error) error {
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
	}
	var explore *benchreport.Explore
	if len(fams) > 0 {
		explore = &benchreport.Explore{Families: fams}
	}
	path := o.jsonFile
	if path == "" {
		path = fmt.Sprintf("EXPLORE_%s.json", time.Now().Format("2006-01-02"))
	}
	err := benchreport.Append(path, benchreport.Report{
		Label:       o.label,
		Timestamp:   time.Now().Format(time.RFC3339),
		Parallel:    harness.Parallelism(),
		Shard:       o.shard,
		TotalMillis: float64(total.Microseconds()) / 1e3,
		Experiments: reports,
		Explore:     explore,
		Replay:      replaySection(claimer),
		Runtime:     snapshotRuntime(),
		Interrupted: interrupted,
		Error:       errText,
	})
	if err == nil {
		fmt.Printf("explore report appended to %s\n", path)
	}
	return err
}

// parseShard validates an "i/n" shard label (1-based).
func parseShard(s string) (i, n int, err error) {
	idx, count, ok := strings.Cut(s, "/")
	if ok {
		i, _ = strconv.Atoi(idx)
		n, _ = strconv.Atoi(count)
	}
	if !ok || i < 1 || n < 1 || i > n {
		return 0, 0, fmt.Errorf("-shard %q: want i/n with 1 <= i <= n", s)
	}
	return i, n, nil
}

// runParent forks -workers worker processes over a shared cache
// directory and merges their partial reports, exactly as helix-bench
// does: the parent never simulates, it owns the run id, the lifetime of
// a temporary cache dir when none was given, and the deterministic
// reassembly + verification of the merged report.
func runParent(ctx context.Context, o *options) int {
	_, runs, err := selectFamilies(o)
	if err != nil {
		log.Fatal(err)
	}
	cacheDir := o.cacheDir
	if cacheDir == "" {
		tmp, err := os.MkdirTemp("", "helix-explore-cache-*")
		if err != nil {
			log.Fatalf("creating temporary cache dir: %v", err)
		}
		defer os.RemoveAll(tmp)
		cacheDir = tmp
	} else if o.cacheClear {
		// Clear once, here, rather than racing N children over it.
		if err := cliutil.SetupCacheDir(cacheDir, true); err != nil {
			log.Fatal(err)
		}
	}
	runid := fmt.Sprintf("r%d-%d", os.Getpid(), time.Now().UnixNano())
	partialDir := filepath.Join(cacheDir, "partials", runid)
	if err := os.MkdirAll(partialDir, 0o755); err != nil {
		log.Fatalf("creating %s: %v", partialDir, err)
	}
	defer os.RemoveAll(partialDir)
	defer os.RemoveAll(filepath.Join(cacheDir, "claims", runid))

	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("resolving own binary: %v", err)
	}
	// Families are claimed whole, so process-level sharding is the
	// parallelism; children run their cells sequentially unless the user
	// explicitly asked for hybrid with -parallel.
	childPar := o.parallel
	if childPar == 0 {
		childPar = 1
	}

	start := time.Now()
	partials := make([]string, o.workers)
	cmds := make([]*exec.Cmd, o.workers)
	for i := 1; i <= o.workers; i++ {
		partials[i-1] = filepath.Join(partialDir, fmt.Sprintf("worker_%d.json", i))
		args := []string{
			"-shard", fmt.Sprintf("%d/%d", i, o.workers),
			"-runid", runid,
			"-cachedir", cacheDir,
			"-jsonfile", partials[i-1],
			"-pack", o.packDir,
			"-level", strconv.Itoa(o.level),
			"-cores", o.coresList,
			"-tiers", o.tiersList,
			"-links", o.linksList,
			"-signals", o.signalsList,
			"-parallel", strconv.Itoa(childPar),
			"-lease", o.lease.String(),
			"-cachebudget", strconv.FormatInt(o.cacheBudget, 10),
		}
		if o.family != "" {
			args = append(args, "-family", o.family)
		}
		if o.quiet {
			args = append(args, "-quiet")
		}
		if o.label != "" {
			args = append(args, "-label", o.label)
		}
		if o.timeout > 0 {
			args = append(args, "-timeout", o.timeout.String())
		}
		cmd := exec.CommandContext(ctx, exe, args...)
		cmd.Stdout = io.Discard // the parent reprints the merged sweeps
		cmd.Stderr = os.Stderr
		cmd.Cancel = func() error { return cmd.Process.Signal(os.Interrupt) }
		cmd.WaitDelay = 15 * time.Second
		if err := cmd.Start(); err != nil {
			log.Fatalf("starting worker %d: %v", i, err)
		}
		cmds[i-1] = cmd
	}
	workerFailures := 0
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "worker %d/%d: %v\n", i+1, o.workers, err)
			workerFailures++
		}
	}
	total := time.Since(start)

	// Merge whatever partial reports exist — a crashed worker leaves no
	// file, but its stolen families appear in a survivor's partial.
	var parts []benchreport.Report
	for i, p := range partials {
		loaded, err := benchreport.Load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d/%d left no partial report: %v\n", i+1, o.workers, err)
			continue
		}
		parts = append(parts, loaded[len(loaded)-1])
	}
	if len(parts) == 0 {
		log.Printf("no worker produced a partial report")
		return 1
	}
	merged, err := benchreport.Merge(parts, experimentOrder(runs))
	if err != nil {
		log.Printf("merging partial reports: %v", err)
		return 1
	}
	merged.Workers = o.workers
	merged.Label = o.label
	merged.TotalMillis = float64(total.Microseconds()) / 1e3

	var wantSHA map[string]string
	if o.verify != "" {
		if wantSHA, err = benchreport.ExpectedHashes(o.verify); err != nil {
			log.Fatalf("loading %s: %v", o.verify, err)
		}
	}
	mismatches := 0
	for _, e := range merged.Experiments {
		fmt.Printf("==== %s ====\n%s\n", e.Name, e.Output)
		verifyOne(e.Name, e.OutputSHA256, wantSHA, o.verify, &mismatches)
	}

	// Completeness: every selected family must have been swept by some
	// worker.
	have := make(map[string]bool, len(merged.Experiments))
	for _, e := range merged.Experiments {
		have[e.Name] = true
	}
	var missing []string
	for _, fr := range runs {
		if !have[experimentName(fr.family)] {
			missing = append(missing, experimentName(fr.family))
		}
	}

	if o.jsonOut || o.jsonFile != "" {
		path := o.jsonFile
		if path == "" {
			path = fmt.Sprintf("EXPLORE_%s.json", time.Now().Format("2006-01-02"))
		}
		if err := benchreport.Append(path, merged); err != nil {
			log.Fatalf("writing explore report: %v", err)
		}
		fmt.Printf("explore report appended to %s\n", path)
	}

	switch {
	case merged.Error != "":
		log.Printf("%s", merged.Error)
		return 1
	case len(missing) > 0:
		log.Printf("incomplete sweep: missing %s", strings.Join(missing, ", "))
		return 1
	case merged.Interrupted:
		log.Printf("interrupted after %.1fs with %d famil(ies) complete", total.Seconds(), len(merged.Experiments))
		return 1
	case mismatches > 0:
		log.Printf("verify: %d famil(ies) diverge from %s", mismatches, o.verify)
		return 1
	case workerFailures > 0:
		log.Printf("%d worker(s) failed (results recovered via lease stealing)", workerFailures)
		return 1
	}
	fmt.Println(strings.Repeat("=", 60))
	fmt.Printf("Sweep complete in %.1fs (%d worker processes): %d families × %d design points.\n",
		total.Seconds(), o.workers, len(runs), len(o.grid))
	return 0
}

func snapshotRuntime() benchreport.Runtime {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return benchreport.Runtime{
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumGoroutine: runtime.NumGoroutine(),
		NumGC:        ms.NumGC,
		HeapAllocMB:  float64(ms.HeapAlloc) / (1 << 20),
		TotalAllocMB: float64(ms.TotalAlloc) / (1 << 20),
		PauseTotalMS: float64(ms.PauseTotalNs) / 1e6,
	}
}
