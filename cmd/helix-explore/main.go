// helix-explore sweeps the HELIX-RC design space over the generated
// workload families (internal/scenarios): ring link latency × signal
// buffer depth × core count × alias tier, per family, rendering a
// speedup heatmap and a cost/speedup frontier table for each.
//
// Usage:
//
//	helix-explore                         # all families, default grid
//	helix-explore -family pointer-chase   # one family
//	helix-explore -cores 2,4 -links 1,32  # reshape the grid
//	helix-explore -json                   # append a report to EXPLORE_<date>.json
//	helix-explore -verify FILE            # compare output hashes against a report
//	helix-explore -workers 4              # shard the sweep over 4 processes
//	helix-explore -workers 2 -remote http://host:8080  # share through helix-serve
//	helix-explore -emitpack               # regenerate scenarios/*.json and exit
//
// Every (family, scenario) pair is recorded exactly once per (cores,
// tier) trace identity; the (link, signals) lanes of the grid are pure
// timing and are served by one batched trace replay per recording
// (sim.ReplayBatch). A 36-point grid over two scenarios therefore costs
// twelve recordings plus two baselines, not 72 simulations — which is
// what makes grid reshaping cheap enough to iterate on.
//
// The sweep runs on the same cached, sharded machinery as helix-bench
// (internal/drive): -cachedir persists recordings across runs, -remote
// shares them through a helix-serve blob backend, and -workers N forks
// N claim-coordinated workers whose merged report is byte-identical to
// a solo run. Scenario packs are loaded from -pack (default scenarios/
// in the working directory); -emitpack regenerates the default packs
// after a deliberate generator change.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"helixrc/internal/artifact"
	"helixrc/internal/benchreport"
	"helixrc/internal/cliutil"
	"helixrc/internal/drive"
	"helixrc/internal/harness"
	"helixrc/internal/hcc"
	"helixrc/internal/irgen"
	"helixrc/internal/scenarios"
)

// sweepFlags are the explore-specific knobs: the grid axes, the pack
// source, and the compilation level.
type sweepFlags struct {
	family      string
	packDir     string
	level       int
	coresList   string
	tiersList   string
	linksList   string
	signalsList string
	emitPack    bool

	grid []harness.SweepConfig // derived from the four axis lists
}

func main() {
	var o drive.Options
	var sf sweepFlags
	drive.RegisterFlags(&o, "sweep", "EXPLORE")
	flag.StringVar(&sf.family, "family", "", "comma-separated family filter (default: every checked-in pack)")
	flag.StringVar(&sf.packDir, "pack", "scenarios", "directory of scenario packs (*.json)")
	flag.IntVar(&sf.level, "level", 3, "HCC compilation level for the parallel runs (1..3)")
	flag.StringVar(&sf.coresList, "cores", "2,4,8", "core counts to sweep (comma-separated)")
	flag.StringVar(&sf.tiersList, "tiers", "1,5", "alias tiers to sweep, 1-based alias.Tiers indices (comma-separated)")
	flag.StringVar(&sf.linksList, "links", "1,8,32", "ring link latencies in cycles to sweep (comma-separated)")
	flag.StringVar(&sf.signalsList, "signals", "0,1", "signal buffer depths to sweep, 0 = unbounded (comma-separated)")
	flag.BoolVar(&sf.emitPack, "emitpack", false, "regenerate the default scenario packs into -pack and exit")
	flag.Parse()

	if sf.emitPack {
		os.Exit(emitPacks(sf.packDir))
	}
	if err := cliutil.CheckLevel(sf.level); err != nil {
		log.Fatal(err)
	}
	grid, err := buildGrid(sf.coresList, sf.tiersList, sf.linksList, sf.signalsList)
	if err != nil {
		log.Fatal(err)
	}
	sf.grid = grid

	packs, runs, err := selectFamilies(&sf)
	if err != nil {
		log.Fatal(err)
	}
	// Register every loaded pack (not just the selected families): the
	// registry is content-validated either way, and registration order
	// then matches across workers regardless of their -family split.
	for _, p := range packs {
		if err := scenarios.RegisterPack(p); err != nil {
			log.Fatal(err)
		}
	}

	os.Exit(drive.Run(&o, plan(&o, &sf, runs)))
}

// plan describes the sweep to the shared orchestrator: one experiment
// per family, the phase-A warm-up, and the Explore report section.
func plan(o *drive.Options, sf *sweepFlags, runs []familyRun) *drive.Plan {
	level := hcc.Level(sf.level)
	var scenarioNames []string
	for _, fr := range runs {
		scenarioNames = append(scenarioNames, fr.scenarios...)
	}

	// The Explore section is collected alongside the experiment reports:
	// runOne appends its family exactly when the orchestrator accepts its
	// rendered output, so the two stay aligned.
	var fams []benchreport.ExploreFamily
	exps := make([]drive.Experiment, len(runs))
	for i, fr := range runs {
		fr := fr
		exps[i] = drive.Experiment{
			Name:     experimentName(fr.family),
			ClaimKey: harness.ExperimentClaimKey(experimentName(fr.family), 0),
			Run: func(ctx context.Context) (string, error) {
				fam, err := sweepFamily(ctx, sf, level, fr)
				if err != nil {
					return "", err
				}
				fams = append(fams, fam)
				return fam.Format(), nil
			},
		}
	}

	childArgs := []string{
		"-pack", sf.packDir,
		"-level", strconv.Itoa(sf.level),
		"-cores", sf.coresList,
		"-tiers", sf.tiersList,
		"-links", sf.linksList,
		"-signals", sf.signalsList,
	}
	if sf.family != "" {
		childArgs = append(childArgs, "-family", sf.family)
	}

	return &drive.Plan{
		What:             "explore",
		Units:            "famil(ies)",
		IncompleteWhat:   "sweep",
		ReportPrefix:     "EXPLORE",
		TempCachePattern: "helix-explore-cache-*",
		Experiments:      exps,
		MergeOrder:       experimentOrder(runs),
		ChildArgs:        childArgs,
		Warm: func(ctx context.Context, claims artifact.Claims) {
			// Phase A: warm the store. Sharded, the content-keyed unit
			// plan is identical on every worker and the claims partition
			// the recordings; solo, the prefetch batches every timing lane
			// of a recording into one trace traversal. Either way each
			// (scenario, cores, tier) is recorded exactly once.
			if claims == nil {
				harness.PrefetchSweep(ctx, scenarioNames, level, sf.grid)
				return
			}
			units, err := harness.PlanSweep(ctx, scenarioNames, level, sf.grid)
			if err != nil {
				fmt.Fprintf(os.Stderr, "shard %s: planning sweep units: %v (continuing uncoordinated)\n", o.Shard, err)
				return
			}
			harness.RunPlan(ctx, units, claims)
		},
		Attach: func(r *benchreport.Report) {
			if len(fams) > 0 {
				r.Explore = &benchreport.Explore{Families: fams}
			}
		},
		Banner: func(total time.Duration, workers int) string {
			if workers > 0 {
				return fmt.Sprintf("Sweep complete in %.1fs (%d worker processes): %d families × %d design points.",
					total.Seconds(), workers, len(runs), len(sf.grid))
			}
			return fmt.Sprintf("Sweep complete in %.1fs: %d families × %d design points.",
				total.Seconds(), len(runs), len(sf.grid))
		},
	}
}

// sweepFamily sweeps one family: every (scenario × grid point) cell,
// the geomean across scenarios per point, and the frontier. After the
// phase-A warm-up the cells are pure cache reads, so ParMap here costs
// memory lookups, not simulation.
func sweepFamily(ctx context.Context, sf *sweepFlags, level hcc.Level, fr familyRun) (benchreport.ExploreFamily, error) {
	ns := len(fr.scenarios)
	// Cell i is (grid point i/ns, scenario i%ns), so the slice below
	// recovers each point's per-scenario speedups contiguously.
	speedups, err := harness.ParMap(ctx, len(sf.grid)*ns, func(ctx context.Context, i int) (float64, error) {
		return harness.SweepCell(ctx, fr.scenarios[i%ns], level, sf.grid[i/ns])
	})
	if err != nil {
		return benchreport.ExploreFamily{}, err
	}
	cells := make([]benchreport.ExploreConfig, len(sf.grid))
	for ci, cfg := range sf.grid {
		per := speedups[ci*ns : (ci+1)*ns]
		cells[ci] = benchreport.ExploreConfig{
			Cores:   cfg.Cores,
			Tier:    cfg.Tier,
			Link:    cfg.Link,
			Signals: cfg.Signals,
			Speedup: harness.Geomean(per),
			Cost:    benchreport.ExploreCost(cfg.Cores, cfg.Link, cfg.Signals),
		}
	}
	return benchreport.ExploreFamily{
		Family:    fr.family,
		Scenarios: append([]string(nil), fr.scenarios...),
		Cells:     cells,
		Frontier:  benchreport.ComputeFrontier(cells),
	}, nil
}

// emitPacks regenerates the canonical pack of every family. This is the
// only sanctioned way to update scenarios/*.json: a deliberate knob or
// generator change re-emits, and the round-trip tests hold everything
// else to the checked-in fingerprints.
func emitPacks(dir string) int {
	var packs []scenarios.Pack
	for _, f := range irgen.Families() {
		p, err := scenarios.DefaultPack(f)
		if err != nil {
			log.Printf("building %s pack: %v", f, err)
			return 1
		}
		packs = append(packs, p)
	}
	if err := scenarios.WriteDir(dir, packs); err != nil {
		log.Print(err)
		return 1
	}
	for _, p := range packs {
		fmt.Printf("wrote %s (%d scenarios)\n", filepath.Join(dir, p.Family+".json"), len(p.Scenarios))
	}
	return 0
}

// parseAxis parses one comma-separated sweep axis, rejecting
// duplicates (a duplicated coordinate would double-count grid cells).
func parseAxis(flagName, s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-%s: empty axis", flagName)
	}
	var vals []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-%s %q: %v", flagName, s, err)
		}
		if seen[v] {
			return nil, fmt.Errorf("-%s %q: duplicate value %d", flagName, s, v)
		}
		seen[v] = true
		vals = append(vals, v)
	}
	return vals, nil
}

// buildGrid materializes the sweep grid in canonical order — cores
// outermost, then tier, link, signals — which fixes cell order in the
// rendered heatmaps and the JSON report. Every point is validated here
// so a bad axis fails before any simulation.
func buildGrid(cores, tiers, links, signals string) ([]harness.SweepConfig, error) {
	cs, err := parseAxis("cores", cores)
	if err != nil {
		return nil, err
	}
	ts, err := parseAxis("tiers", tiers)
	if err != nil {
		return nil, err
	}
	ls, err := parseAxis("links", links)
	if err != nil {
		return nil, err
	}
	ss, err := parseAxis("signals", signals)
	if err != nil {
		return nil, err
	}
	var grid []harness.SweepConfig
	for _, c := range cs {
		for _, t := range ts {
			for _, l := range ls {
				for _, s := range ss {
					cfg := harness.SweepConfig{Cores: c, Tier: t, Link: l, Signals: s}
					if err := cfg.Validate(); err != nil {
						return nil, err
					}
					grid = append(grid, cfg)
				}
			}
		}
	}
	return grid, nil
}

// familyRun is one family's share of the sweep: the registry names of
// its scenarios, in pack order.
type familyRun struct {
	family    string
	scenarios []string
}

// selectFamilies loads the packs and applies the -family filter. The
// result is sorted by family name, which is the canonical experiment
// order a merged sharded report must reassemble.
func selectFamilies(sf *sweepFlags) ([]scenarios.Pack, []familyRun, error) {
	packs, err := scenarios.LoadDir(sf.packDir)
	if err != nil {
		return nil, nil, err
	}
	want := map[string]bool{}
	if sf.family != "" {
		for _, part := range strings.Split(sf.family, ",") {
			f, err := irgen.ParseFamily(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, err
			}
			want[string(f)] = true
		}
	}
	var runs []familyRun
	for _, p := range packs {
		if sf.family != "" && !want[p.Family] {
			continue
		}
		delete(want, p.Family)
		fr := familyRun{family: p.Family}
		for _, m := range p.Scenarios {
			fr.scenarios = append(fr.scenarios, m.Name)
		}
		runs = append(runs, fr)
	}
	if len(want) > 0 {
		var missing []string
		for f := range want {
			missing = append(missing, f)
		}
		sort.Strings(missing)
		return nil, nil, fmt.Errorf("no pack in %s for family %s", sf.packDir, strings.Join(missing, ", "))
	}
	if len(runs) == 0 {
		return nil, nil, fmt.Errorf("no families selected from %s", sf.packDir)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].family < runs[j].family })
	return packs, runs, nil
}

// experimentName is the report name of one family's sweep.
func experimentName(family string) string { return "explore:" + family }

func experimentOrder(runs []familyRun) []string {
	names := make([]string, len(runs))
	for i, fr := range runs {
		names[i] = experimentName(fr.family)
	}
	return names
}
