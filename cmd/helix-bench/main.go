// helix-bench regenerates the tables and figures of the paper's
// evaluation (Section 6).
//
// Usage:
//
//	helix-bench                # everything
//	helix-bench -only fig7     # one experiment
//
// Experiment names: fig1 fig2 fig3 fig4 table1 fig7 fig8 fig9 fig10
// fig11a fig11b fig11c fig11d fig12 tlp.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"helixrc/internal/harness"
)

type experiment struct {
	name string
	run  func() (string, error)
}

func main() {
	only := flag.String("only", "", "run a single experiment (e.g. fig7)")
	cores := flag.Int("cores", 16, "core count for the headline experiments")
	flag.Parse()

	fig := func(f func(int) (*harness.FigureResult, error)) func() (string, error) {
		return func() (string, error) {
			r, err := f(*cores)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}
	}
	panel := func(which string) func() (string, error) {
		return func() (string, error) {
			r, err := harness.Figure11(which)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}
	}
	experiments := []experiment{
		{"fig1", fig(harness.Figure1)},
		{"fig2", func() (string, error) {
			r, err := harness.Figure2()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"fig3", func() (string, error) {
			r, err := harness.Figure3()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"fig4", func() (string, error) {
			r, err := harness.Figure4()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"table1", func() (string, error) {
			rows, err := harness.Table1()
			if err != nil {
				return "", err
			}
			return harness.FormatTable1(rows), nil
		}},
		{"fig7", fig(harness.Figure7)},
		{"fig8", fig(harness.Figure8)},
		{"fig9", fig(harness.Figure9)},
		{"fig10", fig(harness.Figure10)},
		{"fig11a", panel("cores")},
		{"fig11b", panel("link")},
		{"fig11c", panel("signals")},
		{"fig11d", panel("memory")},
		{"fig12", func() (string, error) {
			rows, err := harness.Figure12(*cores)
			if err != nil {
				return "", err
			}
			return harness.FormatFigure12(rows), nil
		}},
		{"tlp", func() (string, error) {
			r, err := harness.TLP()
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
	}

	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		out, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("==== %s ====\n%s\n", e.name, out)
	}
	if *only != "" {
		return
	}
	fmt.Println(strings.Repeat("=", 60))
	fmt.Println("All experiments complete. See EXPERIMENTS.md for the paper-vs-measured comparison.")
}
