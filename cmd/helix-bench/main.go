// helix-bench regenerates the tables and figures of the paper's
// evaluation (Section 6).
//
// Usage:
//
//	helix-bench                    # everything, parallel across all CPUs
//	helix-bench -only fig7         # one experiment
//	helix-bench -parallel 1        # sequential (reference ordering)
//	helix-bench -json              # also append a report to BENCH_<date>.json
//	helix-bench -slowsim           # use the retained reference simulator stepper
//	helix-bench -noreplay          # disable the trace record/replay fast path
//	helix-bench -verify FILE       # compare output hashes against a BENCH_*.json
//	helix-bench -timeout 10m       # bound the whole run's wall clock
//	helix-bench -celltimeout 30s   # bound each experiment cell (partial figures)
//	helix-bench -quiet             # silence cache-eviction diagnostics
//	helix-bench -cachedir .cache   # persist traces + baselines across runs
//	helix-bench -cachedir .cache -cacheclear   # wipe the disk tier first
//	helix-bench -workers 4         # shard the evaluation over 4 worker processes
//
// Experiment names: fig1 fig2 fig3 fig4 table1 fig7 fig8 fig9 fig10
// fig11a fig11b fig11c fig11d fig12 tlp.
//
// Figure output is byte-identical at every -parallel level, with or
// without -slowsim/-noreplay, and at every -workers count; only
// wall-clock changes.
//
// -workers N forks N copies of this binary that share nothing but the
// cache directory (a temporary one if -cachedir is not given). The
// workers partition the work coordinator-free through atomic claim
// files in the cache dir — first the trace recordings (the dominant
// cost, deduplicated across figures), then whole experiments — and
// each writes a partial report the parent merges deterministically.
// A crashed worker's claims expire after -lease and are stolen, so
// the evaluation completes as long as one worker survives. Because
// experiments cannot overlap inside one process (the analysis passes
// mutate workload state), -workers replaces in-process parallelism:
// children default to -parallel 1; pass -parallel explicitly to run
// hybrid. For manual or multi-machine sharding, run each worker
// yourself with -shard i/n against a shared -cachedir, a common fresh
// -runid and a per-worker -jsonfile, then merge the partial reports
// with `go run ./scripts -merge`.
//
// SIGINT/SIGTERM (and -timeout expiry) cancel in-flight work: workers
// drain, the run stops after the current cells return, and -json still
// writes a valid report flagged "interrupted" with the experiments that
// completed. -celltimeout instead degrades individual slow cells: the
// figure completes with zero values in the timed-out cells and a
// PARTIAL FIGURE note naming them.
package main

import (
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"helixrc/internal/artifact"
	"helixrc/internal/benchreport"
	"helixrc/internal/cliutil"
	"helixrc/internal/harness"
)

// options collects the parsed flags so the three run modes (solo,
// worker, parent) share one configuration surface.
type options struct {
	only        string
	cores       int
	parallel    int
	workers     int
	shard       string
	runid       string
	lease       time.Duration
	jsonOut     bool
	jsonFile    string
	slowSim     bool
	noReplay    bool
	cacheBudget int64
	verify      string
	label       string
	timeout     time.Duration
	cellTimeout time.Duration
	quiet       bool
	cacheDir    string
	cacheClear  bool
}

func main() {
	var o options
	flag.StringVar(&o.only, "only", "", "run a single experiment (e.g. fig7)")
	flag.IntVar(&o.cores, "cores", 16, "core count for the headline experiments")
	flag.IntVar(&o.parallel, "parallel", 0, "experiment-engine worker count (0 = all CPUs, 1 = sequential)")
	flag.IntVar(&o.workers, "workers", 0, "shard the evaluation over N worker processes sharing the cache dir (0 = this process only)")
	flag.StringVar(&o.shard, "shard", "", "run as worker i of n (\"i/n\") against a shared -cachedir; requires -runid and -jsonfile")
	flag.StringVar(&o.runid, "runid", "", "work-claiming scope for -shard workers; pick a fresh value per evaluation")
	flag.DurationVar(&o.lease, "lease", time.Minute, "work-claim lease: a crashed worker's claims become stealable after this long")
	flag.BoolVar(&o.jsonOut, "json", false, "append a machine-readable report to BENCH_<date>.json")
	flag.StringVar(&o.jsonFile, "jsonfile", "", "append the machine-readable report to this file instead of BENCH_<date>.json (implies -json)")
	flag.BoolVar(&o.slowSim, "slowsim", false, "use the retained reference simulator stepper (identical output, slower)")
	flag.BoolVar(&o.noReplay, "noreplay", false, "disable the trace record/replay fast path (identical output, slower)")
	flag.Int64Var(&o.cacheBudget, "cachebudget", harness.DefaultCacheBudget>>20, "harness memo-cache byte budget in MB (0 = unbounded)")
	flag.StringVar(&o.verify, "verify", "", "BENCH_*.json file to verify output hashes against (exit 1 on mismatch)")
	flag.StringVar(&o.label, "label", "", "free-form label recorded in the JSON report")
	flag.DurationVar(&o.timeout, "timeout", 0, "bound the whole run's wall clock (0 = none)")
	flag.DurationVar(&o.cellTimeout, "celltimeout", 0, "bound each experiment cell; slow cells degrade to zero values in a flagged partial figure (0 = none)")
	flag.BoolVar(&o.quiet, "quiet", false, "silence engine diagnostics (cache evictions)")
	flag.StringVar(&o.cacheDir, "cachedir", "", "disk tier for recorded traces and baseline results; a warm run re-times them without re-simulating")
	flag.BoolVar(&o.cacheClear, "cacheclear", false, "wipe the -cachedir disk tier before running")
	flag.Parse()

	if err := cliutil.CheckCores(o.cores); err != nil {
		log.Fatal(err)
	}
	if o.workers < 0 {
		log.Fatalf("-workers %d: accepted range is 0..", o.workers)
	}
	if o.workers > 0 && o.shard != "" {
		log.Fatal("-workers and -shard are mutually exclusive (the parent forks the shards itself)")
	}

	// SIGINT/SIGTERM cancel in-flight experiment cells (or, in parent
	// mode, forward to the workers); the report below is still written
	// (flagged interrupted).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	if o.workers > 0 {
		os.Exit(runParent(ctx, &o))
	}
	os.Exit(runLocal(ctx, &o))
}

// selectedExperiments applies -only to the canonical experiment list.
func selectedExperiments(o *options) []harness.Experiment {
	var sel []harness.Experiment
	for _, e := range harness.Experiments(o.cores) {
		if o.only == "" || e.Name == o.only {
			sel = append(sel, e)
		}
	}
	return sel
}

// runLocal executes experiments in this process: the default
// single-process mode, or one -shard worker of a sharded evaluation.
func runLocal(ctx context.Context, o *options) int {
	harness.SetParallelism(o.parallel)
	harness.SetSlowSim(o.slowSim)
	harness.SetNoReplay(o.noReplay)
	harness.SetCacheBudget(o.cacheBudget << 20)
	harness.SetCellTimeout(o.cellTimeout)
	if o.quiet {
		harness.SetQuiet()
	}
	if err := cliutil.SetupCacheDir(o.cacheDir, o.cacheClear); err != nil {
		log.Fatal(err)
	}

	var claimer *artifact.Claimer
	if o.shard != "" {
		if _, _, err := parseShard(o.shard); err != nil {
			log.Fatal(err)
		}
		if o.cacheDir == "" || o.runid == "" {
			log.Fatal("-shard requires -cachedir (the shared store workers coordinate through) and -runid (a value all workers of this evaluation share, fresh per evaluation)")
		}
		if o.jsonFile == "" {
			log.Fatal("-shard requires -jsonfile for this worker's partial report")
		}
		claimer = artifact.NewClaimer(
			filepath.Join(o.cacheDir, "claims", o.runid),
			fmt.Sprintf("shard %s pid%d", o.shard, os.Getpid()),
			o.lease)
	}

	var wantSHA map[string]string
	if o.verify != "" {
		var err error
		if wantSHA, err = benchreport.ExpectedHashes(o.verify); err != nil {
			log.Fatalf("loading %s: %v", o.verify, err)
		}
	}

	selected := selectedExperiments(o)
	start := time.Now()

	// Sharded phase A: warm the shared store cooperatively. The unit
	// plan is identical on every worker (content-keyed), so the claim
	// files partition the recordings; each worker ends with every
	// Result either local or one disk read away.
	if claimer != nil {
		names := make([]string, len(selected))
		for i, e := range selected {
			names[i] = e.Name
		}
		units, err := harness.PlanUnits(ctx, names, o.cores)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shard %s: planning work units: %v (continuing uncoordinated)\n", o.shard, err)
		} else {
			harness.RunPlan(ctx, units, claimer)
		}
	}

	reports, mismatches, interrupted, runErr := runExperiments(ctx, o, selected, claimer, wantSHA)
	total := time.Since(start)

	if o.jsonOut || o.jsonFile != "" {
		if err := appendLocalReport(o, claimer, reports, total, interrupted, runErr); err != nil {
			log.Fatalf("writing benchmark report: %v", err)
		}
	}

	if runErr != nil {
		log.Printf("%v", runErr)
		return 1
	}
	if interrupted {
		log.Printf("interrupted after %.1fs with %d experiment(s) complete", total.Seconds(), len(reports))
		return 1
	}
	if mismatches > 0 {
		log.Printf("verify: %d experiment(s) diverge from %s", mismatches, o.verify)
		return 1
	}
	if o.only == "" && o.shard == "" {
		fmt.Println(strings.Repeat("=", 60))
		fmt.Printf("All experiments complete in %.1fs (%d workers). See EXPERIMENTS.md for the paper-vs-measured comparison.\n",
			total.Seconds(), harness.Parallelism())
	}
	return 0
}

// runExperiments drives the selected experiments. Without a claimer
// they run in order, stopping at the first failure (the single-process
// contract). With one, experiments are claimed whole through the shared
// claim directory: each worker renders the experiments it wins, skips
// the ones another worker finished, polls the ones still held (so a
// crashed holder's lease can expire and be stolen), and keeps going
// past individual failures — some other experiment's worker may still
// need this one to participate.
func runExperiments(ctx context.Context, o *options, selected []harness.Experiment, claimer *artifact.Claimer, wantSHA map[string]string) (reports []benchreport.Experiment, mismatches int, interrupted bool, runErr error) {
	if claimer == nil {
		for _, e := range selected {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			rep, err := runOne(ctx, o, e, wantSHA, &mismatches)
			if err != nil {
				if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					interrupted = true
					break
				}
				runErr = err
				break
			}
			reports = append(reports, rep)
		}
		return
	}

	done := make(map[string]bool, len(selected))
	for len(done) < len(selected) {
		if ctx.Err() != nil {
			interrupted = true
			return
		}
		progress := false
		for _, e := range selected {
			if done[e.Name] || ctx.Err() != nil {
				continue
			}
			lease, st, err := claimer.Acquire(harness.ExperimentClaimKey(e.Name, o.cores))
			if err != nil {
				// Claim dir unusable: run it ourselves. Worst case is a
				// duplicated experiment, which the merge accepts as long
				// as the outputs agree (and they do — byte-identical).
				lease, st = nil, artifact.ClaimAcquired
			}
			switch st {
			case artifact.ClaimAcquired:
				rep, err := runOne(ctx, o, e, wantSHA, &mismatches)
				if err != nil {
					if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						if lease != nil {
							lease.Release() // let a surviving worker rerun it
						}
						interrupted = true
						return
					}
					if lease != nil {
						lease.Done("error: " + err.Error())
					}
					runErr = errors.Join(runErr, err)
				} else {
					if lease != nil {
						lease.Done(rep.OutputSHA256)
					}
					reports = append(reports, rep)
				}
				done[e.Name] = true
				progress = true
			case artifact.ClaimDone:
				done[e.Name] = true
				progress = true
			case artifact.ClaimHeld:
				// revisit next pass
			}
		}
		if !progress {
			select {
			case <-ctx.Done():
				interrupted = true
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	return
}

// runOne renders one experiment, prints it, and verifies its hash.
func runOne(ctx context.Context, o *options, e harness.Experiment, wantSHA map[string]string, mismatches *int) (benchreport.Experiment, error) {
	expStart := time.Now()
	out, err := e.Run(ctx)
	if err != nil {
		return benchreport.Experiment{}, fmt.Errorf("%s: %w", e.Name, err)
	}
	wall := time.Since(expStart)
	fmt.Printf("==== %s ====\n%s\n", e.Name, out)
	sha := fmt.Sprintf("%x", sha256.Sum256([]byte(out)))
	verifyOne(e.Name, sha, wantSHA, o.verify, mismatches)
	return benchreport.Experiment{
		Name:         e.Name,
		WallMillis:   float64(wall.Microseconds()) / 1e3,
		OutputSHA256: sha,
		Output:       out,
		Partial:      strings.Contains(out, "PARTIAL FIGURE:"),
	}, nil
}

func verifyOne(name, sha string, wantSHA map[string]string, verifyPath string, mismatches *int) {
	if wantSHA == nil {
		return
	}
	switch want, ok := wantSHA[name]; {
	case !ok:
		fmt.Printf("verify %s: no reference hash in %s (skipped)\n", name, verifyPath)
	case want != sha:
		fmt.Printf("verify %s: MISMATCH (want %s, got %s)\n", name, want[:12], sha[:12])
		*mismatches++
	default:
		fmt.Printf("verify %s: ok\n", name)
	}
}

// replaySection assembles the replay/caching counters of this process,
// including the work-claiming counters when sharded.
func replaySection(claimer *artifact.Claimer) *benchreport.Replay {
	recordings, replays := harness.ReplayStats()
	batches, batchConfigs, batchFallbacks := harness.BatchStats()
	cs := harness.CacheStats()
	if claimer != nil {
		cs.Add(claimer.Stats())
	}
	return &benchreport.Replay{
		Recordings:     recordings,
		Replays:        replays,
		Batches:        batches,
		BatchConfigs:   batchConfigs,
		BatchFallbacks: batchFallbacks,
		Claims:         cs.Claims,
		Steals:         cs.Steals,
		ExpiredLeases:  cs.ExpiredLeases,
		DupSuppressed:  cs.DupSuppressed,
		MemHits:        cs.MemHits,
		MemMisses:      cs.MemMisses,
		DiskHits:       cs.DiskHits,
		DiskMisses:     cs.DiskMisses,
		DiskWrites:     cs.DiskWrites,
		DiskLoadMS:     float64(cs.DiskLoadNS) / 1e6,
		CacheEvictions: cs.Evictions,
		CacheEvictedMB: float64(cs.EvictedBytes) / (1 << 20),
	}
}

// appendLocalReport writes this process's (solo or partial) report.
func appendLocalReport(o *options, claimer *artifact.Claimer, reports []benchreport.Experiment, total time.Duration, interrupted bool, runErr error) error {
	anyPartial := false
	for _, r := range reports {
		anyPartial = anyPartial || r.Partial
	}
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
	}
	path := o.jsonFile
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	err := benchreport.Append(path, benchreport.Report{
		Label:       o.label,
		Timestamp:   time.Now().Format(time.RFC3339),
		Parallel:    harness.Parallelism(),
		Shard:       o.shard,
		SlowSim:     o.slowSim,
		NoReplay:    o.noReplay,
		Cores:       o.cores,
		TotalMillis: float64(total.Microseconds()) / 1e3,
		Experiments: reports,
		Replay:      replaySection(claimer),
		Runtime:     snapshotRuntime(),
		Interrupted: interrupted,
		Partial:     anyPartial,
		Error:       errText,
	})
	if err == nil {
		fmt.Printf("benchmark report appended to %s\n", path)
	}
	return err
}

// parseShard validates an "i/n" shard label (1-based).
func parseShard(s string) (i, n int, err error) {
	idx, count, ok := strings.Cut(s, "/")
	if ok {
		i, _ = strconv.Atoi(idx)
		n, _ = strconv.Atoi(count)
	}
	if !ok || i < 1 || n < 1 || i > n {
		return 0, 0, fmt.Errorf("-shard %q: want i/n with 1 <= i <= n", s)
	}
	return i, n, nil
}

// runParent forks -workers worker processes over a shared cache
// directory and merges their partial reports. The parent itself never
// simulates: it owns the run id (which scopes the claim files), the
// lifetime of a temporary cache dir when none was given, and the
// deterministic reassembly + verification of the merged report.
func runParent(ctx context.Context, o *options) int {
	cacheDir := o.cacheDir
	if cacheDir == "" {
		tmp, err := os.MkdirTemp("", "helix-bench-cache-*")
		if err != nil {
			log.Fatalf("creating temporary cache dir: %v", err)
		}
		defer os.RemoveAll(tmp)
		cacheDir = tmp
	} else if o.cacheClear {
		// Clear once, here, rather than racing N children over it.
		if err := cliutil.SetupCacheDir(cacheDir, true); err != nil {
			log.Fatal(err)
		}
	}
	runid := fmt.Sprintf("r%d-%d", os.Getpid(), time.Now().UnixNano())
	partialDir := filepath.Join(cacheDir, "partials", runid)
	if err := os.MkdirAll(partialDir, 0o755); err != nil {
		log.Fatalf("creating %s: %v", partialDir, err)
	}
	// The run's coordination state is worthless after the merge; the
	// artifacts (traces, baselines, results) stay.
	defer os.RemoveAll(partialDir)
	defer os.RemoveAll(filepath.Join(cacheDir, "claims", runid))

	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("resolving own binary: %v", err)
	}
	// Experiments cannot overlap within one process, so process-level
	// sharding is the parallelism; children run their cells sequentially
	// unless the user explicitly asked for hybrid with -parallel.
	childPar := o.parallel
	if childPar == 0 {
		childPar = 1
	}

	start := time.Now()
	partials := make([]string, o.workers)
	cmds := make([]*exec.Cmd, o.workers)
	for i := 1; i <= o.workers; i++ {
		partials[i-1] = filepath.Join(partialDir, fmt.Sprintf("worker_%d.json", i))
		args := []string{
			"-shard", fmt.Sprintf("%d/%d", i, o.workers),
			"-runid", runid,
			"-cachedir", cacheDir,
			"-jsonfile", partials[i-1],
			"-cores", strconv.Itoa(o.cores),
			"-parallel", strconv.Itoa(childPar),
			"-lease", o.lease.String(),
			"-cachebudget", strconv.FormatInt(o.cacheBudget, 10),
		}
		if o.only != "" {
			args = append(args, "-only", o.only)
		}
		if o.slowSim {
			args = append(args, "-slowsim")
		}
		if o.noReplay {
			args = append(args, "-noreplay")
		}
		if o.quiet {
			args = append(args, "-quiet")
		}
		if o.label != "" {
			args = append(args, "-label", o.label)
		}
		if o.timeout > 0 {
			args = append(args, "-timeout", o.timeout.String())
		}
		if o.cellTimeout > 0 {
			args = append(args, "-celltimeout", o.cellTimeout.String())
		}
		cmd := exec.CommandContext(ctx, exe, args...)
		cmd.Stdout = io.Discard // the parent reprints the merged figures
		cmd.Stderr = os.Stderr
		cmd.Cancel = func() error { return cmd.Process.Signal(os.Interrupt) }
		cmd.WaitDelay = 15 * time.Second
		if err := cmd.Start(); err != nil {
			log.Fatalf("starting worker %d: %v", i, err)
		}
		cmds[i-1] = cmd
	}
	workerFailures := 0
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "worker %d/%d: %v\n", i+1, o.workers, err)
			workerFailures++
		}
	}
	total := time.Since(start)

	// Merge whatever partial reports exist — a crashed worker leaves no
	// file, but its stolen experiments appear in a survivor's partial.
	var parts []benchreport.Report
	for i, p := range partials {
		runs, err := benchreport.Load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d/%d left no partial report: %v\n", i+1, o.workers, err)
			continue
		}
		parts = append(parts, runs[len(runs)-1])
	}
	if len(parts) == 0 {
		log.Printf("no worker produced a partial report")
		return 1
	}
	merged, err := benchreport.Merge(parts, harness.ExperimentNames())
	if err != nil {
		log.Printf("merging partial reports: %v", err)
		return 1
	}
	merged.Workers = o.workers
	merged.Label = o.label
	merged.TotalMillis = float64(total.Microseconds()) / 1e3

	var wantSHA map[string]string
	if o.verify != "" {
		if wantSHA, err = benchreport.ExpectedHashes(o.verify); err != nil {
			log.Fatalf("loading %s: %v", o.verify, err)
		}
	}
	mismatches := 0
	for _, e := range merged.Experiments {
		fmt.Printf("==== %s ====\n%s\n", e.Name, e.Output)
		verifyOne(e.Name, e.OutputSHA256, wantSHA, o.verify, &mismatches)
	}

	// Completeness: every selected experiment must have been rendered by
	// some worker.
	have := make(map[string]bool, len(merged.Experiments))
	for _, e := range merged.Experiments {
		have[e.Name] = true
	}
	var missing []string
	for _, e := range selectedExperiments(o) {
		if !have[e.Name] {
			missing = append(missing, e.Name)
		}
	}

	if o.jsonOut || o.jsonFile != "" {
		path := o.jsonFile
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
		}
		if err := benchreport.Append(path, merged); err != nil {
			log.Fatalf("writing benchmark report: %v", err)
		}
		fmt.Printf("benchmark report appended to %s\n", path)
	}

	switch {
	case merged.Error != "":
		log.Printf("%s", merged.Error)
		return 1
	case len(missing) > 0:
		log.Printf("incomplete evaluation: missing %s", strings.Join(missing, ", "))
		return 1
	case merged.Interrupted:
		log.Printf("interrupted after %.1fs with %d experiment(s) complete", total.Seconds(), len(merged.Experiments))
		return 1
	case mismatches > 0:
		log.Printf("verify: %d experiment(s) diverge from %s", mismatches, o.verify)
		return 1
	case workerFailures > 0:
		log.Printf("%d worker(s) failed (results recovered via lease stealing)", workerFailures)
		return 1
	}
	if o.only == "" {
		fmt.Println(strings.Repeat("=", 60))
		fmt.Printf("All experiments complete in %.1fs (%d worker processes). See EXPERIMENTS.md for the paper-vs-measured comparison.\n",
			total.Seconds(), o.workers)
	}
	return 0
}

func snapshotRuntime() benchreport.Runtime {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return benchreport.Runtime{
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumGoroutine: runtime.NumGoroutine(),
		NumGC:        ms.NumGC,
		HeapAllocMB:  float64(ms.HeapAlloc) / (1 << 20),
		TotalAllocMB: float64(ms.TotalAlloc) / (1 << 20),
		PauseTotalMS: float64(ms.PauseTotalNs) / 1e6,
	}
}
