// helix-bench regenerates the tables and figures of the paper's
// evaluation (Section 6).
//
// Usage:
//
//	helix-bench                    # everything, parallel across all CPUs
//	helix-bench -only fig7         # one experiment
//	helix-bench -parallel 1        # sequential (reference ordering)
//	helix-bench -json              # also append a report to BENCH_<date>.json
//	helix-bench -slowsim           # use the retained reference simulator stepper
//	helix-bench -noreplay          # disable the trace record/replay fast path
//	helix-bench -verify FILE       # compare output hashes against a BENCH_*.json
//	helix-bench -timeout 10m       # bound the whole run's wall clock
//	helix-bench -celltimeout 30s   # bound each experiment cell (partial figures)
//	helix-bench -quiet             # silence cache-eviction diagnostics
//	helix-bench -cachedir .cache   # persist traces + baselines across runs
//	helix-bench -cachedir .cache -cacheclear   # wipe the disk tier first
//	helix-bench -workers 4         # shard the evaluation over 4 worker processes
//	helix-bench -workers 2 -remote http://host:8080  # share through helix-serve
//
// Experiment names: fig1 fig2 fig3 fig4 table1 fig7 fig8 fig9 fig10
// fig11a fig11b fig11c fig11d fig12 tlp.
//
// Figure output is byte-identical at every -parallel level, with or
// without -slowsim/-noreplay, and at every -workers count; only
// wall-clock changes.
//
// -workers N forks N copies of this binary that share nothing but the
// cache substrate. By default that is a cache directory (a temporary
// one if -cachedir is not given) with atomic claim files in it; with
// -remote it is a helix-serve blob backend, whose claim table replaces
// the claim files and whose blob store carries the recordings — and if
// no -cachedir is given, each worker runs on its own disjoint scratch
// cache, proving the daemon is the only shared state (the
// multi-machine topology). Workers partition the work coordinator-free
// — first the trace recordings (the dominant cost, deduplicated across
// figures), then whole experiments — and each writes a partial report
// the parent merges deterministically. A crashed worker's claims
// expire after -lease and are stolen, so the evaluation completes as
// long as one worker survives; a dead -remote daemon degrades every
// lookup to a cache miss and every claim to uncoordinated (duplicated,
// still byte-identical) work. Because experiments cannot overlap
// inside one process (the analysis passes mutate workload state),
// -workers replaces in-process parallelism: children default to
// -parallel 1; pass -parallel explicitly to run hybrid. For manual or
// multi-machine sharding, run each worker yourself with -shard i/n
// against a shared -cachedir or -remote, a common fresh -runid and a
// per-worker -jsonfile, then merge the partial reports with
// `go run ./scripts -merge`.
//
// SIGINT/SIGTERM (and -timeout expiry) cancel in-flight work: workers
// drain, the run stops after the current cells return, and -json still
// writes a valid report flagged "interrupted" with the experiments that
// completed. -celltimeout instead degrades individual slow cells: the
// figure completes with zero values in the timed-out cells and a
// PARTIAL FIGURE note naming them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"helixrc/internal/artifact"
	"helixrc/internal/cliutil"
	"helixrc/internal/drive"
	"helixrc/internal/harness"
)

func main() {
	var o drive.Options
	var only string
	drive.RegisterFlags(&o, "evaluation", "BENCH")
	flag.StringVar(&only, "only", "", "run a single experiment (e.g. fig7)")
	flag.IntVar(&o.Cores, "cores", 16, "core count for the headline experiments")
	flag.BoolVar(&o.SlowSim, "slowsim", false, "use the retained reference simulator stepper (identical output, slower)")
	flag.BoolVar(&o.NoReplay, "noreplay", false, "disable the trace record/replay fast path (identical output, slower)")
	flag.DurationVar(&o.CellTimeout, "celltimeout", 0, "bound each experiment cell; slow cells degrade to zero values in a flagged partial figure (0 = none)")
	flag.Parse()

	if err := cliutil.CheckCores(o.Cores); err != nil {
		log.Fatal(err)
	}

	os.Exit(drive.Run(&o, plan(&o, only)))
}

// plan selects the experiments (-only filters the canonical list) and
// describes the run to the shared orchestrator.
func plan(o *drive.Options, only string) *drive.Plan {
	var exps []drive.Experiment
	for _, e := range harness.Experiments(o.Cores) {
		if only != "" && e.Name != only {
			continue
		}
		exps = append(exps, drive.Experiment{
			Name:     e.Name,
			ClaimKey: harness.ExperimentClaimKey(e.Name, o.Cores),
			Run:      e.Run,
		})
	}

	childArgs := []string{"-cores", strconv.Itoa(o.Cores)}
	if only != "" {
		childArgs = append(childArgs, "-only", only)
	}
	if o.SlowSim {
		childArgs = append(childArgs, "-slowsim")
	}
	if o.NoReplay {
		childArgs = append(childArgs, "-noreplay")
	}
	if o.CellTimeout > 0 {
		childArgs = append(childArgs, "-celltimeout", o.CellTimeout.String())
	}

	return &drive.Plan{
		What:             "benchmark",
		Units:            "experiment(s)",
		IncompleteWhat:   "evaluation",
		ReportPrefix:     "BENCH",
		TempCachePattern: "helix-bench-cache-*",
		Experiments:      exps,
		MergeOrder:       harness.ExperimentNames(),
		ChildArgs:        childArgs,
		Warm: func(ctx context.Context, claims artifact.Claims) {
			// Sharded phase A: warm the shared store cooperatively. The
			// unit plan is identical on every worker (content-keyed), so
			// the claims partition the recordings.
			if claims == nil {
				return
			}
			names := make([]string, len(exps))
			for i, e := range exps {
				names[i] = e.Name
			}
			units, err := harness.PlanUnits(ctx, names, o.Cores)
			if err != nil {
				fmt.Fprintf(os.Stderr, "shard %s: planning work units: %v (continuing uncoordinated)\n", o.Shard, err)
				return
			}
			harness.RunPlan(ctx, units, claims)
		},
		Banner: func(total time.Duration, workers int) string {
			if only != "" {
				return ""
			}
			if workers > 0 {
				return fmt.Sprintf("All experiments complete in %.1fs (%d worker processes). See EXPERIMENTS.md for the paper-vs-measured comparison.",
					total.Seconds(), workers)
			}
			return fmt.Sprintf("All experiments complete in %.1fs (%d workers). See EXPERIMENTS.md for the paper-vs-measured comparison.",
				total.Seconds(), harness.Parallelism())
		},
	}
}
