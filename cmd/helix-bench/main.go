// helix-bench regenerates the tables and figures of the paper's
// evaluation (Section 6).
//
// Usage:
//
//	helix-bench                    # everything, parallel across all CPUs
//	helix-bench -only fig7         # one experiment
//	helix-bench -parallel 1        # sequential (reference ordering)
//	helix-bench -json              # also append a report to BENCH_<date>.json
//	helix-bench -slowsim           # use the retained reference simulator stepper
//	helix-bench -noreplay          # disable the trace record/replay fast path
//	helix-bench -verify FILE       # compare output hashes against a BENCH_*.json
//	helix-bench -timeout 10m       # bound the whole run's wall clock
//	helix-bench -celltimeout 30s   # bound each experiment cell (partial figures)
//	helix-bench -quiet             # silence cache-eviction diagnostics
//	helix-bench -cachedir .cache   # persist traces + baselines across runs
//	helix-bench -cachedir .cache -cacheclear   # wipe the disk tier first
//
// Experiment names: fig1 fig2 fig3 fig4 table1 fig7 fig8 fig9 fig10
// fig11a fig11b fig11c fig11d fig12 tlp.
//
// Figure output is byte-identical at every -parallel level and with or
// without -slowsim/-noreplay; only wall-clock changes.
//
// SIGINT/SIGTERM (and -timeout expiry) cancel in-flight work: workers
// drain, the run stops after the current cells return, and -json still
// writes a valid report flagged "interrupted" with the experiments that
// completed. -celltimeout instead degrades individual slow cells: the
// figure completes with zero values in the timed-out cells and a
// PARTIAL FIGURE note naming them.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"helixrc/internal/atomicio"
	"helixrc/internal/cliutil"
	"helixrc/internal/harness"
)

// expReport records one experiment's wall-clock and output for the
// machine-readable benchmark log.
type expReport struct {
	Name         string  `json:"name"`
	WallMillis   float64 `json:"wall_ms"`
	OutputSHA256 string  `json:"output_sha256"`
	Output       string  `json:"output"`
	// Partial marks a figure with timed-out, degraded cells (the output
	// carries the PARTIAL FIGURE note naming them).
	Partial bool `json:"partial,omitempty"`
}

// runtimeSnapshot captures the Go runtime state at the end of a run.
type runtimeSnapshot struct {
	GoVersion    string  `json:"go_version"`
	NumCPU       int     `json:"num_cpu"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumGoroutine int     `json:"num_goroutine"`
	NumGC        uint32  `json:"num_gc"`
	HeapAllocMB  float64 `json:"heap_alloc_mb"`
	TotalAllocMB float64 `json:"total_alloc_mb"`
	PauseTotalMS float64 `json:"gc_pause_total_ms"`
}

// replayReport summarizes how harness simulations were served: fresh
// recordings (full execution) vs trace replays, batched-retiming
// counters (one batch = one trace traversal retiming several configs;
// a fallback is a group that degraded to a solo replay because only
// one config was missing), per-tier hit/miss counters of the artifact
// stores, plus cache pressure. A warm -cachedir run shows recordings=0
// and disk_hits>0.
type replayReport struct {
	Recordings     int64   `json:"recordings"`
	Replays        int64   `json:"replays"`
	Batches        int64   `json:"batches"`
	BatchConfigs   int64   `json:"batch_configs"`
	BatchFallbacks int64   `json:"batch_fallbacks"`
	MemHits        int64   `json:"mem_hits"`
	MemMisses      int64   `json:"mem_misses"`
	DiskHits       int64   `json:"disk_hits,omitempty"`
	DiskMisses     int64   `json:"disk_misses,omitempty"`
	DiskWrites     int64   `json:"disk_writes,omitempty"`
	DiskLoadMS     float64 `json:"disk_load_ms,omitempty"`
	CacheEvictions int64   `json:"cache_evictions"`
	CacheEvictedMB float64 `json:"cache_evicted_mb"`
}

// benchReport is one helix-bench invocation in BENCH_<date>.json (the
// file holds a JSON array; each run appends an element).
type benchReport struct {
	Label       string          `json:"label,omitempty"`
	Timestamp   string          `json:"timestamp"`
	Parallel    int             `json:"parallel"`
	SlowSim     bool            `json:"slow_sim"`
	NoReplay    bool            `json:"no_replay,omitempty"`
	Cores       int             `json:"cores"`
	TotalMillis float64         `json:"total_wall_ms"`
	Experiments []expReport     `json:"experiments"`
	Replay      *replayReport   `json:"replay,omitempty"`
	Runtime     runtimeSnapshot `json:"runtime"`
	// Interrupted marks a run cut short by SIGINT/SIGTERM or -timeout;
	// Experiments then holds only the figures that completed.
	Interrupted bool `json:"interrupted,omitempty"`
	// Partial marks a run where at least one figure degraded cells on
	// the -celltimeout deadline.
	Partial bool `json:"partial,omitempty"`
	// Error records the failure that ended the run early, if any.
	Error string `json:"error,omitempty"`
}

func main() {
	only := flag.String("only", "", "run a single experiment (e.g. fig7)")
	cores := flag.Int("cores", 16, "core count for the headline experiments")
	parallel := flag.Int("parallel", 0, "experiment-engine worker count (0 = all CPUs, 1 = sequential)")
	jsonOut := flag.Bool("json", false, "append a machine-readable report to BENCH_<date>.json")
	jsonFile := flag.String("jsonfile", "", "append the machine-readable report to this file instead of BENCH_<date>.json (implies -json)")
	slowSim := flag.Bool("slowsim", false, "use the retained reference simulator stepper (identical output, slower)")
	noReplay := flag.Bool("noreplay", false, "disable the trace record/replay fast path (identical output, slower)")
	cacheBudget := flag.Int64("cachebudget", harness.DefaultCacheBudget>>20, "harness memo-cache byte budget in MB (0 = unbounded)")
	verify := flag.String("verify", "", "BENCH_*.json file to verify output hashes against (exit 1 on mismatch)")
	label := flag.String("label", "", "free-form label recorded in the JSON report")
	timeout := flag.Duration("timeout", 0, "bound the whole run's wall clock (0 = none)")
	cellTimeout := flag.Duration("celltimeout", 0, "bound each experiment cell; slow cells degrade to zero values in a flagged partial figure (0 = none)")
	quiet := flag.Bool("quiet", false, "silence engine diagnostics (cache evictions)")
	cacheDir := flag.String("cachedir", "", "disk tier for recorded traces and baseline results; a warm run re-times them without re-simulating")
	cacheClear := flag.Bool("cacheclear", false, "wipe the -cachedir disk tier before running")
	flag.Parse()

	if err := cliutil.CheckCores(*cores); err != nil {
		log.Fatal(err)
	}
	harness.SetParallelism(*parallel)
	harness.SetSlowSim(*slowSim)
	harness.SetNoReplay(*noReplay)
	harness.SetCacheBudget(*cacheBudget << 20)
	harness.SetCellTimeout(*cellTimeout)
	if *quiet {
		harness.SetQuiet()
	}
	if err := cliutil.SetupCacheDir(*cacheDir, *cacheClear); err != nil {
		log.Fatal(err)
	}

	// SIGINT/SIGTERM cancel in-flight experiment cells; the pool drains
	// and the report below is still written (flagged interrupted).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var wantSHA map[string]string
	if *verify != "" {
		var err error
		if wantSHA, err = loadExpectedHashes(*verify); err != nil {
			log.Fatalf("loading %s: %v", *verify, err)
		}
	}

	var reports []expReport
	mismatches := 0
	interrupted := false
	var runErr error
	start := time.Now()
	for _, e := range harness.Experiments(*cores) {
		if *only != "" && e.Name != *only {
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		expStart := time.Now()
		out, err := e.Run(ctx)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				interrupted = true
				break
			}
			runErr = fmt.Errorf("%s: %w", e.Name, err)
			break
		}
		wall := time.Since(expStart)
		fmt.Printf("==== %s ====\n%s\n", e.Name, out)
		sha := fmt.Sprintf("%x", sha256.Sum256([]byte(out)))
		if wantSHA != nil {
			switch want, ok := wantSHA[e.Name]; {
			case !ok:
				fmt.Printf("verify %s: no reference hash in %s (skipped)\n", e.Name, *verify)
			case want != sha:
				fmt.Printf("verify %s: MISMATCH (want %s, got %s)\n", e.Name, want[:12], sha[:12])
				mismatches++
			default:
				fmt.Printf("verify %s: ok\n", e.Name)
			}
		}
		reports = append(reports, expReport{
			Name:         e.Name,
			WallMillis:   float64(wall.Microseconds()) / 1e3,
			OutputSHA256: sha,
			Output:       out,
			Partial:      strings.Contains(out, "PARTIAL FIGURE:"),
		})
	}
	total := time.Since(start)

	if *jsonOut || *jsonFile != "" {
		recordings, replays := harness.ReplayStats()
		batches, batchConfigs, batchFallbacks := harness.BatchStats()
		cs := harness.CacheStats()
		anyPartial := false
		for _, r := range reports {
			anyPartial = anyPartial || r.Partial
		}
		errText := ""
		if runErr != nil {
			errText = runErr.Error()
		}
		path := *jsonFile
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
		}
		if err := appendReport(path, benchReport{
			Label:       *label,
			Timestamp:   time.Now().Format(time.RFC3339),
			Parallel:    harness.Parallelism(),
			SlowSim:     *slowSim,
			NoReplay:    *noReplay,
			Cores:       *cores,
			TotalMillis: float64(total.Microseconds()) / 1e3,
			Experiments: reports,
			Replay: &replayReport{
				Recordings:     recordings,
				Replays:        replays,
				Batches:        batches,
				BatchConfigs:   batchConfigs,
				BatchFallbacks: batchFallbacks,
				MemHits:        cs.MemHits,
				MemMisses:      cs.MemMisses,
				DiskHits:       cs.DiskHits,
				DiskMisses:     cs.DiskMisses,
				DiskWrites:     cs.DiskWrites,
				DiskLoadMS:     float64(cs.DiskLoadNS) / 1e6,
				CacheEvictions: cs.Evictions,
				CacheEvictedMB: float64(cs.EvictedBytes) / (1 << 20),
			},
			Runtime:     snapshotRuntime(),
			Interrupted: interrupted,
			Partial:     anyPartial,
			Error:       errText,
		}); err != nil {
			log.Fatalf("writing benchmark report: %v", err)
		}
	}

	if runErr != nil {
		log.Fatalf("%v", runErr)
	}
	if interrupted {
		log.Fatalf("interrupted after %.1fs with %d experiment(s) complete", total.Seconds(), len(reports))
	}
	if mismatches > 0 {
		log.Fatalf("verify: %d experiment(s) diverge from %s", mismatches, *verify)
	}

	if *only != "" {
		return
	}
	fmt.Println(strings.Repeat("=", 60))
	fmt.Printf("All experiments complete in %.1fs (%d workers). See EXPERIMENTS.md for the paper-vs-measured comparison.\n",
		total.Seconds(), harness.Parallelism())
}

// loadExpectedHashes builds the experiment -> output_sha256 map from a
// BENCH_*.json file. Later runs in the array win, so the reference is
// the most recent recording of each experiment. Interrupted or partial
// runs never contribute reference hashes.
func loadExpectedHashes(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var runs []benchReport
	if err := json.Unmarshal(data, &runs); err != nil {
		return nil, fmt.Errorf("%s is not a run array: %w", path, err)
	}
	want := map[string]string{}
	for _, r := range runs {
		if r.Interrupted || r.Partial || r.Error != "" {
			continue
		}
		for _, e := range r.Experiments {
			want[e.Name] = e.OutputSHA256
		}
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("%s contains no experiment hashes", path)
	}
	return want, nil
}

func snapshotRuntime() runtimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeSnapshot{
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumGoroutine: runtime.NumGoroutine(),
		NumGC:        ms.NumGC,
		HeapAllocMB:  float64(ms.HeapAlloc) / (1 << 20),
		TotalAllocMB: float64(ms.TotalAlloc) / (1 << 20),
		PauseTotalMS: float64(ms.PauseTotalNs) / 1e6,
	}
}

// appendReport appends the run to the report file. The file holds a
// JSON array of runs so before/after comparisons live side by side; the
// read-modify-write goes through an atomic rename so a crash or signal
// mid-write leaves either the old array or the new one, never a torn
// file.
func appendReport(path string, r benchReport) error {
	var runs []benchReport
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("%s is not a run array: %w", path, err)
		}
	}
	runs = append(runs, r)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	if err := atomicio.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmark report appended to %s\n", path)
	return nil
}
