// helix-profile reports the HCC loop-selection decisions for a benchmark:
// every candidate loop, its profile statistics, the selection estimate and
// the accept/reject reason — the paper's Section 4 profiler in action.
//
// Usage:
//
//	helix-profile -bench 164.gzip -level 3
package main

import (
	"flag"
	"fmt"
	"log"

	"helixrc"
	"helixrc/internal/cliutil"
)

func main() {
	bench := flag.String("bench", "164.gzip", "benchmark name")
	level := flag.Int("level", 3, "compiler generation: 1, 2 or 3")
	cores := flag.Int("cores", 16, "target core count")
	cacheDir := flag.String("cachedir", "", "artifact store disk tier (shared with helix-bench/helix-run)")
	flag.Parse()

	// Validate numeric flags at the edge so a typo fails with the
	// accepted range instead of a confusing downstream error.
	if err := cliutil.CheckLevel(*level); err != nil {
		log.Fatal(err)
	}
	if err := cliutil.CheckCores(*cores); err != nil {
		log.Fatal(err)
	}
	if err := cliutil.SetupCacheDir(*cacheDir, false); err != nil {
		log.Fatal(err)
	}

	w, err := helixrc.LoadWorkload(*bench)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := helixrc.Compile(w.Prog, w.Entry, helixrc.Options{
		Level: helixrc.Level(*level), Cores: *cores, TrainArgs: w.TrainArgs,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s compiled with %s for %d cores (training input %v)\n\n",
		w.Name, helixrc.Level(*level), *cores, w.TrainArgs)
	fmt.Printf("selected loops (total coverage %.1f%%):\n", 100*comp.Coverage)
	for _, pl := range comp.Loops {
		fmt.Printf("  %-34s cov %5.1f%%  est %5.1fx  iter %5.0f instrs  trip %6.0f  segs %d  counted=%v\n",
			pl.Loop.String()+" in "+pl.Fn.Name, 100*pl.Coverage, pl.EstSpeedup,
			pl.AvgIterLen, pl.AvgTripCount, pl.NumSegs, pl.Counted)
		for _, seg := range pl.Segments {
			fmt.Printf("      segment %d: %d shared accesses, static span %d instrs\n",
				seg.ID, seg.MemberInstrs, seg.SpanInstrs)
		}
		if len(pl.Recompute) > 0 {
			fmt.Printf("      recomputed registers: %d\n", len(pl.Recompute))
		}
		if len(pl.Reductions) > 0 {
			fmt.Printf("      parallel reductions: %d\n", len(pl.Reductions))
		}
		if len(pl.SlotOf) > 0 {
			fmt.Printf("      shared registers demoted to slots: %d\n", len(pl.SlotOf))
		}
	}
	fmt.Printf("\nrejected loops:\n")
	for _, rej := range comp.Rejected {
		fmt.Printf("  %-34s %-42s est %5.2fx\n",
			rej.Loop.String()+" in "+rej.Fn.Name, rej.Reason, rej.Estimate)
	}
}
