// helix-fuzz sweeps generator seeds through the differential oracle
// matrix (see internal/difftest), shrinking any failure to a minimal
// reproducer. It complements `go test -fuzz=FuzzDifferential
// ./internal/difftest`: the native fuzzer explores mutated inputs under
// coverage guidance, this driver does wide deterministic seed sweeps in
// parallel and emits corpus files.
//
//	helix-fuzz -seeds 1000                  # sweep seeds 0..999
//	helix-fuzz -start 5000 -seeds 200 -v    # a different window, chatty
//	helix-fuzz -seeds 50 -emit testdata     # write corpus entries
//	helix-fuzz -repro file.hir              # re-run one corpus file
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"helixrc/internal/cliutil"
	"helixrc/internal/difftest"
	"helixrc/internal/harness"
	"helixrc/internal/hcc"
	"helixrc/internal/irgen"
)

func main() {
	var (
		start    = flag.Uint64("start", 0, "first generator seed")
		seeds    = flag.Uint64("seeds", 100, "number of seeds to sweep")
		out      = flag.String("out", "", "directory for minimized failure reproducers")
		emit     = flag.String("emit", "", "emit passing seeds as corpus files into this directory")
		repro    = flag.String("repro", "", "re-check a single corpus file and exit")
		budget   = flag.Int64("budget", 0, "interpreter/simulator step budget (0 = default)")
		trials   = flag.Int("shrink", 600, "max shrink trials per failure")
		parallel = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
		quick    = flag.Bool("quick", false, "narrow oracle matrix (single level/core pair per seed)")
		cacheDir = flag.String("cachedir", "", "artifact store disk tier (shared with helix-bench/helix-run)")
		verbose  = flag.Bool("v", false, "log every seed")
	)
	flag.Parse()
	harness.SetParallelism(*parallel)
	if !*verbose {
		// Cache-eviction notices would interleave with sweep output.
		harness.SetQuiet()
	}
	if err := cliutil.SetupCacheDir(*cacheDir, false); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *repro != "" {
		os.Exit(reproduceFile(*repro, *budget))
	}

	// SIGINT/SIGTERM cancel in-flight seed checks; the pool drains and
	// the failures found so far are still reported (flagged interrupted).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	type verdict struct {
		seed uint64
		fail *difftest.Failure
	}
	// Failures are collected out-of-band so an interrupted sweep still
	// reports everything found before the cancellation.
	var mu sync.Mutex
	var found []verdict
	swept := 0
	_, err := harness.ParMap(ctx, int(*seeds), func(ctx context.Context, i int) (struct{}, error) {
		seed := *start + uint64(i)
		opt := difftest.Options{Budget: *budget}
		if *quick {
			opt.Levels = []hcc.Level{hcc.Level(1 + seed%3)}
			opt.Cores = []int{[]int{1, 2, 4, 8, 16}[seed%5]}
			opt.SkipCross = true
		}
		f := difftest.Check(ctx, difftest.FromSeed(seed), opt)
		if f != nil {
			f = difftest.Shrink(ctx, f, opt, *trials)
		}
		if *verbose {
			status := "ok"
			if f != nil {
				status = "FAIL " + f.Stage
			}
			fmt.Fprintf(os.Stderr, "seed %d: %s\n", seed, status)
		}
		mu.Lock()
		if ctx.Err() == nil {
			swept++
		}
		if f != nil {
			found = append(found, verdict{seed, f})
		}
		mu.Unlock()
		return struct{}{}, nil
	})
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seed < found[j].seed })
	failures := 0
	for _, v := range found {
		failures++
		fmt.Printf("seed %d: %v\n", v.seed, v.fail)
		if *out != "" {
			name := filepath.Join(*out, fmt.Sprintf("fail_seed%d_%s.hir", v.seed, v.fail.Stage))
			if err := os.MkdirAll(*out, 0o755); err == nil {
				err = os.WriteFile(name, []byte(difftest.Reproduce(v.fail)), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", name, err)
			} else {
				fmt.Printf("  minimized reproducer: %s\n", name)
			}
		}
	}
	if *emit != "" && !interrupted {
		if err := emitCorpus(*emit, *start, *seeds, *budget); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if interrupted {
		fmt.Printf("INTERRUPTED: swept %d of %d seeds from %d: %d failures\n", swept, *seeds, *start, failures)
		os.Exit(1)
	}
	fmt.Printf("swept %d seeds from %d: %d failures\n", *seeds, *start, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// reproduceFile replays one corpus file through the full matrix.
func reproduceFile(path string, budget int64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	text, args, err := difftest.SplitCorpusFile(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if f := difftest.Check(context.Background(), difftest.FromText(text, args), difftest.Options{Budget: budget}); f != nil {
		fmt.Printf("%s: %v\n", path, f)
		return 1
	}
	fmt.Printf("%s: ok\n", path)
	return 0
}

// emitCorpus writes each passing seed whose compile selects at least one
// parallel loop as a corpus file (these are the interesting regression
// inputs; seeds that never parallelize exercise nothing new).
func emitCorpus(dir string, start, seeds uint64, budget int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	written := 0
	for seed := start; seed < start+seeds; seed++ {
		p, f, args := irgen.Generate(seed)
		comp, err := hcc.Compile(p, f, hcc.Options{TrainArgs: args, MinSpeedup: 1.0})
		if err != nil || len(comp.Loops) == 0 {
			continue
		}
		// Re-generate: Compile mutated the program above.
		p, f, args = irgen.Generate(seed)
		var sb strings.Builder
		fmt.Fprintf(&sb, "# seed: %d (loops selected at V3/16c: %d)\n# args:", seed, len(comp.Loops))
		for _, a := range args {
			fmt.Fprintf(&sb, " %d", a)
		}
		sb.WriteByte('\n')
		sb.WriteString(p.Text(f))
		name := filepath.Join(dir, fmt.Sprintf("gen_seed%d.hir", seed))
		if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("emitted %d corpus files to %s\n", written, dir)
	return nil
}
