// helix-serve runs the evaluation harness as a long-running HTTP/JSON
// daemon: compile, simulate and figure jobs share one process-wide
// two-tier artifact store, so a warm daemon answers repeated work at
// cache-hit cost instead of re-simulating.
//
// Usage:
//
//	helix-serve                          # listen on :8080, 2 workers
//	helix-serve -addr :9000 -concurrency 4 -queue 128
//	helix-serve -cachedir .cache         # persist traces across restarts
//	helix-serve -maxdeadline 5m          # clamp per-request deadlines
//	helix-serve -addrfile serve.addr     # write the bound address (scripts)
//
// Endpoints:
//
//	POST   /jobs       submit {"kind":"figure","experiment":"fig9"} -> 202 {id}
//	GET    /jobs/{id}  poll; terminal states carry the result
//	DELETE /jobs/{id}  cancel (queued or running); result is flagged partial
//	GET    /metrics    latency quantiles, queue gauges, cache counters
//	GET    /healthz    liveness (503 while draining)
//
// With -blobdir DIR the daemon additionally serves as the shared blob
// backend of a multi-machine evaluation (the -remote flag of
// helix-bench and helix-explore):
//
//	GET/PUT /blobs/{kind}/{scheme}/{key}   content-addressed artifact tier
//	POST    /claims/{scope}/{verb}         work-claim table (acquire/done/release)
//
// Admission control: at most -concurrency jobs run at once and at most
// -queue wait; beyond that submissions shed with 429 + Retry-After.
// Per-request deadlines (deadline_ms) run from admission and are
// clamped to -maxdeadline.
//
// SIGINT/SIGTERM drain gracefully: in-flight and queued jobs finish,
// new submissions get 503, and the process exits once the queue is
// empty (bounded by -draintimeout).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"helixrc/internal/cliutil"
	"helixrc/internal/harness"
	"helixrc/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		addrFile     = flag.String("addrfile", "", "write the bound address to this file once listening (for scripts; \":0\" picks a free port)")
		concurrency  = flag.Int("concurrency", 2, "jobs executed at once (figure jobs additionally serialize on the experiment lock)")
		queueDepth   = flag.Int("queue", 64, "admitted-but-not-running job bound; submissions beyond it shed with 429")
		defDeadline  = flag.Duration("deadline", 0, "default per-job deadline for requests that set none (0 = unbounded)")
		maxDeadline  = flag.Duration("maxdeadline", 0, "clamp requested deadlines to this (0 = no clamp)")
		drainTimeout = flag.Duration("draintimeout", 2*time.Minute, "how long shutdown waits for admitted jobs to finish")
		retain       = flag.Int("retain", 4096, "finished job records kept for polling")
		parallel     = flag.Int("parallel", 0, "experiment-engine worker count per job (0 = all CPUs)")
		cacheBudget  = flag.Int64("cachebudget", harness.DefaultCacheBudget>>20, "harness memo-cache byte budget in MB (0 = unbounded)")
		cacheDir     = flag.String("cachedir", "", "disk tier for recorded traces and baseline results (survives restarts)")
		cacheClear   = flag.Bool("cacheclear", false, "wipe the -cachedir disk tier before serving")
		blobDir      = flag.String("blobdir", "", "serve a blob backend from this directory: /blobs/{kind}/{scheme}/{key} GET/PUT plus /claims/{scope} work-claiming, for -remote clients (helix-bench, helix-explore)")
		quiet        = flag.Bool("quiet", false, "silence engine diagnostics (cache evictions)")
	)
	flag.Parse()

	harness.SetParallelism(*parallel)
	harness.SetCacheBudget(*cacheBudget << 20)
	if *quiet {
		harness.SetQuiet()
	}
	if err := cliutil.SetupCacheDir(*cacheDir, *cacheClear); err != nil {
		log.Fatal(err)
	}

	s := server.New(server.Config{
		Concurrency:     *concurrency,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		RetainJobs:      *retain,
		BlobDir:         *blobDir,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("helix-serve listening on %s (concurrency %d, queue %d)", bound, *concurrency, *queueDepth)

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		log.Fatal(err)
	}
	stop() // a second signal kills the process the default way

	log.Printf("helix-serve draining (admitted jobs finish, new submissions get 503)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := s.Shutdown(dctx); err != nil {
		log.Printf("drain: %v", err)
		code = 1
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("helix-serve stopped")
	os.Exit(code)
}
