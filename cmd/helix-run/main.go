// helix-run compiles and simulates one benchmark analogue end to end.
//
// Usage:
//
//	helix-run -bench 175.vpr -level 3 -cores 16 [-ring=false] [-link 1]
//	helix-run -bench 175.vpr -cachedir .cache   # reuse persisted traces
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"helixrc"
	"helixrc/internal/cliutil"
	"helixrc/internal/harness"
	"helixrc/internal/sim"
)

func main() {
	bench := flag.String("bench", "175.vpr", "benchmark name (see -list)")
	level := flag.Int("level", 3, "compiler generation: 1, 2 or 3")
	cores := flag.Int("cores", 16, "core count")
	ring := flag.Bool("ring", true, "enable the ring cache (false = conventional coherence)")
	link := flag.Int("link", 1, "ring link latency in cycles")
	sigbw := flag.Int("sigbw", 5, "ring signal bandwidth (0 = unbounded)")
	nodeKB := flag.Int("nodebytes", 1024, "ring node array bytes (0 = unbounded)")
	cacheDir := flag.String("cachedir", "", "artifact store disk tier; warm runs replay persisted traces instead of re-simulating")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(helixrc.Workloads(), "\n"))
		return
	}

	// Validate numeric flags at the edge so a typo fails with the
	// accepted range instead of a confusing downstream error.
	for _, err := range []error{
		cliutil.CheckLevel(*level),
		cliutil.CheckCores(*cores),
		cliutil.CheckNonNegative("link", *link, "cycles"),
		cliutil.CheckNonNegative("sigbw", *sigbw, "0 = unbounded"),
		cliutil.CheckNonNegative("nodebytes", *nodeKB, "0 = unbounded"),
	} {
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := cliutil.SetupCacheDir(*cacheDir, false); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var arch helixrc.Platform
	if *ring {
		arch = helixrc.HelixRC(*cores)
		arch.Ring.LinkLatency = *link
		arch.Ring.SignalBandwidth = *sigbw
		arch.Ring.ArrayBytes = *nodeKB
	} else {
		arch = helixrc.Conventional(*cores)
	}

	var (
		w    *helixrc.Workload
		comp *helixrc.Compiled
		seq  *helixrc.Result
		par  *helixrc.Result
		err  error
	)
	if *cacheDir != "" {
		// Cached path: compilations, sequential baselines and parallel
		// traces all go through the harness artifact stores, so a warm
		// run replays persisted traces instead of re-simulating.
		w, err = helixrc.LoadWorkload(*bench)
		if err != nil {
			log.Fatal(err)
		}
		seq, err = harness.CachedBaseline(ctx, *bench, helixrc.Conventional(*cores), true)
		if err != nil {
			log.Fatal(err)
		}
		par, comp, err = harness.CachedRun(ctx, *bench, helixrc.Level(*level), arch, true)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		w, err = helixrc.LoadWorkload(*bench)
		if err != nil {
			log.Fatal(err)
		}
		comp, err = helixrc.Compile(w.Prog, w.Entry, helixrc.Options{
			Level: helixrc.Level(*level), Cores: *cores, TrainArgs: w.TrainArgs,
		})
		if err != nil {
			log.Fatal(err)
		}
		seq, err = helixrc.SimulateContext(ctx, w.Prog, nil, w.Entry, helixrc.Conventional(*cores), w.RefArgs...)
		if err != nil {
			log.Fatal(err)
		}
		par, err = helixrc.SimulateContext(ctx, w.Prog, comp, w.Entry, arch, w.RefArgs...)
		if err != nil {
			log.Fatal(err)
		}
	}
	if seq.RetValue != par.RetValue {
		fmt.Fprintf(os.Stderr, "FUNCTIONAL MISMATCH: %d != %d\n", par.RetValue, seq.RetValue)
		os.Exit(1)
	}

	fmt.Printf("%s, %s, %d cores, ring=%v\n", w.Name, helixrc.Level(*level), *cores, *ring)
	fmt.Printf("parallelized loops: %d (coverage %.1f%%)\n", len(comp.Loops), 100*comp.Coverage)
	for _, pl := range comp.Loops {
		fmt.Printf("  %-30s cov %5.1f%%  iter %4.0f instrs  trip %5.0f  segs %d  counted=%v\n",
			pl.Body.Name, 100*pl.Coverage, pl.AvgIterLen, pl.AvgTripCount, pl.NumSegs, pl.Counted)
	}
	fmt.Printf("sequential: %d cycles\n", seq.Cycles)
	fmt.Printf("parallel:   %d cycles  speedup %.2fx\n", par.Cycles, helixrc.Speedup(seq, par))
	fmt.Printf("iterations run: %d over %d invocations\n", par.IterationsRun, par.LoopInvocations)
	o := par.Overheads
	fmt.Printf("overheads: ")
	for i, s := range o.Shares() {
		fmt.Printf("%s %.1f%%  ", sim.ShareNames[i], 100*s)
	}
	fmt.Println()
}
