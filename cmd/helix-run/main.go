// helix-run compiles and simulates one benchmark analogue end to end.
//
// Usage:
//
//	helix-run -bench 175.vpr -level 3 -cores 16 [-ring=false] [-link 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"helixrc"
	"helixrc/internal/sim"
)

func main() {
	bench := flag.String("bench", "175.vpr", "benchmark name (see -list)")
	level := flag.Int("level", 3, "compiler generation: 1, 2 or 3")
	cores := flag.Int("cores", 16, "core count")
	ring := flag.Bool("ring", true, "enable the ring cache (false = conventional coherence)")
	link := flag.Int("link", 1, "ring link latency in cycles")
	sigbw := flag.Int("sigbw", 5, "ring signal bandwidth (0 = unbounded)")
	nodeKB := flag.Int("nodebytes", 1024, "ring node array bytes (0 = unbounded)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(helixrc.Workloads(), "\n"))
		return
	}

	// Validate numeric flags at the edge so a typo fails with the
	// accepted range instead of a confusing downstream error.
	if *level < 1 || *level > 3 {
		log.Fatalf("-level %d: accepted range is 1..3 (HCCv1, HCCv2, HCCv3)", *level)
	}
	if *cores < 1 || *cores > 1024 {
		log.Fatalf("-cores %d: accepted range is 1..1024", *cores)
	}
	if *link < 0 {
		log.Fatalf("-link %d: accepted range is 0.. (cycles)", *link)
	}
	if *sigbw < 0 {
		log.Fatalf("-sigbw %d: accepted range is 0.. (0 = unbounded)", *sigbw)
	}
	if *nodeKB < 0 {
		log.Fatalf("-nodebytes %d: accepted range is 0.. (0 = unbounded)", *nodeKB)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w, err := helixrc.LoadWorkload(*bench)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := helixrc.Compile(w.Prog, w.Entry, helixrc.Options{
		Level: helixrc.Level(*level), Cores: *cores, TrainArgs: w.TrainArgs,
	})
	if err != nil {
		log.Fatal(err)
	}

	var arch helixrc.Platform
	if *ring {
		arch = helixrc.HelixRC(*cores)
		arch.Ring.LinkLatency = *link
		arch.Ring.SignalBandwidth = *sigbw
		arch.Ring.ArrayBytes = *nodeKB
	} else {
		arch = helixrc.Conventional(*cores)
	}

	seq, err := helixrc.SimulateContext(ctx, w.Prog, nil, w.Entry, helixrc.Conventional(*cores), w.RefArgs...)
	if err != nil {
		log.Fatal(err)
	}
	par, err := helixrc.SimulateContext(ctx, w.Prog, comp, w.Entry, arch, w.RefArgs...)
	if err != nil {
		log.Fatal(err)
	}
	if seq.RetValue != par.RetValue {
		fmt.Fprintf(os.Stderr, "FUNCTIONAL MISMATCH: %d != %d\n", par.RetValue, seq.RetValue)
		os.Exit(1)
	}

	fmt.Printf("%s, %s, %d cores, ring=%v\n", w.Name, helixrc.Level(*level), *cores, *ring)
	fmt.Printf("parallelized loops: %d (coverage %.1f%%)\n", len(comp.Loops), 100*comp.Coverage)
	for _, pl := range comp.Loops {
		fmt.Printf("  %-30s cov %5.1f%%  iter %4.0f instrs  trip %5.0f  segs %d  counted=%v\n",
			pl.Body.Name, 100*pl.Coverage, pl.AvgIterLen, pl.AvgTripCount, pl.NumSegs, pl.Counted)
	}
	fmt.Printf("sequential: %d cycles\n", seq.Cycles)
	fmt.Printf("parallel:   %d cycles  speedup %.2fx\n", par.Cycles, helixrc.Speedup(seq, par))
	fmt.Printf("iterations run: %d over %d invocations\n", par.IterationsRun, par.LoopInvocations)
	o := par.Overheads
	fmt.Printf("overheads: ")
	for i, s := range o.Shares() {
		fmt.Printf("%s %.1f%%  ", sim.ShareNames[i], 100*s)
	}
	fmt.Println()
}
