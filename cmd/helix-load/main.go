// helix-load drives a running helix-serve daemon with a reproducible
// request mix and reports client-observed end-to-end latency next to
// the server's own /metrics snapshot.
//
// Usage:
//
//	helix-load -addr http://127.0.0.1:8080                 # 5s hot-key figure mix
//	helix-load -mix uniform -kind simulate -clients 8
//	helix-load -duration 10s -hot fig9 -hotfrac 0.9
//	helix-load -verify BENCH_2026-08-05.json               # gate figure hashes
//	helix-load -jsonfile serve_report.json -label smoke    # append a report
//	helix-load -wait 30s                                   # poll /healthz first
//
// Mixes: "hotkey" concentrates -hotfrac of the traffic on one key (the
// warm-cache production shape), "uniform" spreads it across the whole
// parameter space (cold-path capacity). The seed makes a run
// reproducible; client i draws from -seed+i.
//
// With -verify, figure results are hashed against the expected hashes
// of a helix-bench report and any divergence makes the exit code 1 —
// the daemon must serve byte-identical figures to the batch harness.
// The appended JSON report (-json/-jsonfile) is what scripts/slocheck
// gates against perf/serve_slo_budgets.json.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"helixrc/internal/benchreport"
	"helixrc/internal/cliutil"
	"helixrc/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the helix-serve daemon")
		wait     = flag.Duration("wait", 0, "poll /healthz up to this long before starting (0 = assume ready)")
		duration = flag.Duration("duration", 5*time.Second, "load run length")
		clients  = flag.Int("clients", 4, "closed-loop client count")
		mix      = flag.String("mix", "hotkey", "request mix: hotkey | uniform")
		kind     = flag.String("kind", "figure", "job kind to submit: figure | simulate | compile")
		hot      = flag.String("hot", "fig9", "hot experiment (figure kind) for the hotkey mix")
		hotWl    = flag.String("hotworkload", "175.vpr", "hot workload (compile/simulate kinds) for the hotkey mix")
		hotFrac  = flag.Float64("hotfrac", 0.9, "hot-key share of requests in the hotkey mix (0..1]")
		cores    = flag.Int("cores", 16, "core count for every request")
		deadline = flag.Int64("deadlinems", 0, "per-request deadline_ms forwarded to the server (0 = server default)")
		seed     = flag.Int64("seed", 1, "mix seed; client i draws from seed+i")
		verify   = flag.String("verify", "", "BENCH_*.json file with expected figure hashes; divergence exits 1")
		jsonOut  = flag.Bool("json", false, "append a report to SERVE_<date>.json")
		jsonFile = flag.String("jsonfile", "", "append the report to this file instead (implies -json)")
		label    = flag.String("label", "", "free-form label recorded in the report")
	)
	flag.Parse()

	// Validate at the edge: a typo'd mix or an out-of-range hot fraction
	// fails here with the accepted range, not after a load run that
	// silently measured something else.
	if err := cliutil.CheckOneOf("mix", *mix, "hotkey", "uniform"); err != nil {
		log.Fatal(err)
	}
	if err := cliutil.CheckOneOf("kind", *kind, "figure", "simulate", "compile"); err != nil {
		log.Fatal(err)
	}
	if err := cliutil.CheckFraction("hotfrac", *hotFrac); err != nil {
		log.Fatal(err)
	}

	opts := server.LoadOptions{
		BaseURL:        strings.TrimRight(*addr, "/"),
		Clients:        *clients,
		Duration:       *duration,
		Mix:            *mix,
		HotFrac:        *hotFrac,
		Kind:           *kind,
		HotExperiment:  *hot,
		HotWorkload:    *hotWl,
		Cores:          *cores,
		Seed:           *seed,
		DeadlineMillis: *deadline,
	}
	if *verify != "" {
		hashes, err := benchreport.ExpectedHashes(*verify)
		if err != nil {
			log.Fatal(err)
		}
		opts.VerifyHashes = hashes
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *wait > 0 {
		if err := server.WaitReady(ctx, opts.BaseURL, *wait); err != nil {
			log.Fatal(err)
		}
	}

	res, err := server.RunLoad(ctx, opts)
	if err != nil {
		if res == nil {
			log.Fatal(err) // options rejected before any request was sent
		}
		log.Printf("%v", err)
	}
	report := res.Report(*label)
	fmt.Print(server.FormatServe(&report))

	if *jsonFile != "" {
		*jsonOut = true
	}
	if *jsonOut {
		path := *jsonFile
		if path == "" {
			path = fmt.Sprintf("SERVE_%s.json", time.Now().Format("2006-01-02"))
		}
		if err := benchreport.Append(path, report); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report appended to %s\n", path)
	}

	code := 0
	if n := res.Summary.HashMismatches; n > 0 {
		fmt.Printf("FAIL: %d figure results diverged from %s\n", n, *verify)
		code = 1
	}
	if res.Summary.Completed == 0 {
		fmt.Println("FAIL: load run completed no requests")
		code = 1
	}
	os.Exit(code)
}
